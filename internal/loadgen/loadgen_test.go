package loadgen

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hummer"
	"hummer/internal/server"
)

// newTarget spins up a hummerd handler over a fresh DB.
func newTarget(t *testing.T, opts ...server.Option) (*httptest.Server, *hummer.DB) {
	t.Helper()
	db := hummer.New()
	ts := httptest.NewServer(server.New(db, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts, db
}

// TestScheduleDeterminism: the request schedule is a pure function of
// the config — same seed, same schedule; different seed, different
// schedule — in both closed- and open-loop modes.
func TestScheduleDeterminism(t *testing.T) {
	closed := Config{Seed: 7, Mode: ModeClosed, Classes: DefaultClasses(), Requests: 100}
	s1, err := Schedule(closed)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Schedule(closed)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(s1) != Fingerprint(s2) {
		t.Fatalf("closed-loop schedules diverged: %s vs %s", Fingerprint(s1), Fingerprint(s2))
	}
	closed.Seed = 8
	s3, err := Schedule(closed)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(s1) == Fingerprint(s3) {
		t.Fatalf("different seeds produced the same schedule fingerprint %s", Fingerprint(s1))
	}

	open := Config{Seed: 7, Mode: ModeOpen, Arrival: ArrivalPoisson, Classes: DefaultClasses(),
		Phases: []Phase{{Duration: time.Second, Rate: 50}, {Duration: time.Second, Rate: 200}}}
	o1, err := Schedule(open)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Schedule(open)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(o1) != Fingerprint(o2) {
		t.Fatal("open-loop schedules diverged at the same seed")
	}
	if len(o1) == 0 {
		t.Fatal("poisson schedule is empty")
	}
	for i := 1; i < len(o1); i++ {
		if o1[i].At < o1[i-1].At {
			t.Fatalf("arrival offsets not monotone at %d: %v < %v", i, o1[i].At, o1[i-1].At)
		}
	}

	// Constant arrivals are exactly 1/rate apart within a phase.
	con := Config{Seed: 1, Mode: ModeOpen, Arrival: ArrivalConstant, Classes: DefaultClasses(),
		Phases: []Phase{{Duration: 100 * time.Millisecond, Rate: 100}}}
	c1, err := Schedule(con)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != 9 { // arrivals at 10ms..90ms; 100ms falls off the phase edge
		t.Fatalf("constant schedule has %d requests, want 9", len(c1))
	}
	for i, r := range c1 {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if r.At != want {
			t.Fatalf("constant arrival %d at %v, want %v", i, r.At, want)
		}
	}

	// Config validation.
	for _, bad := range []Config{
		{Mode: ModeClosed, Classes: DefaultClasses()},                                        // no Requests
		{Mode: ModeOpen, Classes: DefaultClasses()},                                          // no phases
		{Mode: ModeClosed, Requests: 10},                                                     // no classes
		{Mode: ModeOpen, Classes: DefaultClasses(), Phases: []Phase{{Rate: 0, Duration: 1}}}, // zero rate
		{Mode: "jittery", Classes: DefaultClasses(), Requests: 10},                           // unknown mode
	} {
		if _, err := Schedule(bad); err == nil {
			t.Errorf("Schedule(%+v) unexpectedly succeeded", bad)
		}
	}
}

// TestLoadgenSmoke: a fixed-seed closed-loop run against an
// in-process hummerd completes with nothing but 200s, produces
// per-class percentiles (with time-to-first-row for the stream
// classes), and leaves matching per-class histograms on /metrics.
func TestLoadgenSmoke(t *testing.T) {
	// Tracing rides along by default; a nanosecond slow-query
	// threshold forces the span-tree dump on every request so the
	// observability hot path is exercised under production-shaped
	// load, not just in unit tests.
	ts, _ := newTarget(t,
		server.WithSlowQueryLog(time.Nanosecond),
		server.WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil))))
	ctx := context.Background()
	const seed = 42
	if err := Setup(ctx, ts.Client(), ts.URL, seed, 40); err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		BaseURL:     ts.URL,
		Client:      ts.Client(),
		Seed:        seed,
		Mode:        ModeClosed,
		Classes:     DefaultClasses(),
		Concurrency: 4,
		Requests:    48,
	}
	sched, err := Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The run executed exactly the pre-computed schedule.
	if res.ScheduleFingerprint != Fingerprint(sched) {
		t.Errorf("run fingerprint %s != schedule fingerprint %s", res.ScheduleFingerprint, Fingerprint(sched))
	}
	if res.ScheduleRequests != cfg.Requests {
		t.Errorf("schedule_requests = %d, want %d", res.ScheduleRequests, cfg.Requests)
	}
	if res.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v, want > 0", res.ThroughputRPS)
	}
	if got := res.Statuses["200"]; got != cfg.Requests {
		t.Errorf("statuses = %v, want all %d requests 200", res.Statuses, cfg.Requests)
	}

	// Every class of the default mix saw traffic (deterministic for
	// this seed) and has coherent percentiles.
	if len(res.Classes) != len(cfg.Classes) {
		t.Fatalf("got %d class results, want %d: %+v", len(res.Classes), len(cfg.Classes), res.Classes)
	}
	for _, cr := range res.Classes {
		if cr.Requests == 0 {
			t.Errorf("class %s got no requests at seed %d", cr.Class, seed)
			continue
		}
		if cr.Latency.Count != cr.Statuses["200"] {
			t.Errorf("class %s: latency count %d != 200s %d", cr.Class, cr.Latency.Count, cr.Statuses["200"])
		}
		if cr.Latency.P50Seconds <= 0 || cr.Latency.P99Seconds < cr.Latency.P95Seconds ||
			cr.Latency.P95Seconds < cr.Latency.P50Seconds {
			t.Errorf("class %s: percentiles not monotone/positive: %+v", cr.Class, cr.Latency)
		}
		if cr.RetryAfterMissing != 0 {
			t.Errorf("class %s: %d overload responses without Retry-After", cr.Class, cr.RetryAfterMissing)
		}
		if cr.Endpoint == string(EndpointStream) {
			if cr.Rows == 0 {
				t.Errorf("stream class %s read no rows", cr.Class)
			}
			if cr.TTFR == nil || cr.TTFR.Count == 0 {
				t.Errorf("stream class %s has no time-to-first-row samples", cr.Class)
			} else if cr.TTFR.P50Seconds > cr.Latency.MaxSeconds {
				t.Errorf("stream class %s: TTFR p50 %v exceeds max latency %v",
					cr.Class, cr.TTFR.P50Seconds, cr.Latency.MaxSeconds)
			}
		}
	}

	// The server's per-class histograms saw the same traffic.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`hummer_query_duration_seconds_bucket{class="query",le="`,
		`hummer_query_duration_seconds_bucket{class="stream",le="`,
		`hummer_query_duration_seconds_bucket{class="batch",le="`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing per-class histogram series %q", want)
		}
	}
}

// TestRunOpenLoop: a short constant-rate open-loop run fires the
// whole schedule and records latencies without workers pacing each
// other.
func TestRunOpenLoop(t *testing.T) {
	ts, _ := newTarget(t)
	ctx := context.Background()
	const seed = 11
	if err := Setup(ctx, ts.Client(), ts.URL, seed, 20); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		BaseURL: ts.URL,
		Client:  ts.Client(),
		Seed:    seed,
		Mode:    ModeOpen,
		Arrival: ArrivalConstant,
		Classes: []Class{{Name: "warm_fuse", Endpoint: EndpointQuery, SQL: FuseSQL, Weight: 1}},
		Phases:  []Phase{{Duration: 300 * time.Millisecond, Rate: 30}},
	}
	res, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statuses["200"] != res.ScheduleRequests {
		t.Fatalf("statuses = %v over %d scheduled", res.Statuses, res.ScheduleRequests)
	}
	if res.ElapsedSeconds < 0.2 {
		t.Errorf("open-loop run finished in %vs, faster than its own schedule", res.ElapsedSeconds)
	}
}

// TestSetupIdempotent: running Setup twice replaces the fixture
// sources instead of failing on alias conflicts.
func TestSetupIdempotent(t *testing.T) {
	ts, _ := newTarget(t)
	ctx := context.Background()
	if err := Setup(ctx, ts.Client(), ts.URL, 3, 10); err != nil {
		t.Fatal(err)
	}
	if err := Setup(ctx, ts.Client(), ts.URL, 3, 10); err != nil {
		t.Fatalf("second Setup: %v", err)
	}
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/sources", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, alias := range []string{"lg_s1", "lg_s2", "lg_big"} {
		if !strings.Contains(string(body), alias) {
			t.Errorf("sources listing missing %s: %s", alias, body)
		}
	}
}
