package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"hummer/internal/datagen"
)

// Source aliases the harness registers on the target server. Fresh
// names keep the load fixture from colliding with anything a human
// registered on the same hummerd.
const (
	aliasLeft  = "lg_s1"
	aliasRight = "lg_s2"
	aliasBig   = "lg_big"
)

// FuseSQL is the fusion statement the fuse-classes run: a two-source
// FUSE BY with a conflict-resolving RESOLVE, the paper's running
// shape.
const FuseSQL = "SELECT Name, RESOLVE(Age, max) FUSE FROM " + aliasLeft + ", " + aliasRight + " FUSE BY (Name) ORDER BY Name"

// SelectSQL is the plain single-table statement (no matching, no
// duplicate detection) over the large dirty table.
const SelectSQL = "SELECT * FROM " + aliasBig

// DefaultClasses is the standard workload mix: warm and cold fusion
// queries, a plain SELECT both materialized and streamed, a streamed
// fusion, and a batch. Four-plus distinct classes so a single run
// yields per-class percentiles across the server's whole API surface.
func DefaultClasses() []Class {
	return []Class{
		{Name: "warm_fuse", Endpoint: EndpointQuery, SQL: FuseSQL, Weight: 4},
		{Name: "cold_fuse", Endpoint: EndpointQuery, SQL: FuseSQL, Weight: 1, Purge: true},
		{Name: "select_mat", Endpoint: EndpointQuery, SQL: SelectSQL, Weight: 2},
		{Name: "select_stream", Endpoint: EndpointStream, SQL: SelectSQL, Weight: 2},
		{Name: "fuse_stream", Endpoint: EndpointStream, SQL: FuseSQL, Weight: 2},
		{Name: "batch", Endpoint: EndpointBatch, Statements: []string{FuseSQL, SelectSQL}, Weight: 1},
	}
}

// Setup registers the load fixture on the target server via inline
// source registration: two heterogeneous person sources for the
// fusion classes (lg_s1/lg_s2, the right one with renamed columns)
// and one large dirty duplicate-ridden table (lg_big) for the scan
// classes. Deterministic for a given seed; replace semantics make
// Setup idempotent.
func Setup(ctx context.Context, client *http.Client, baseURL string, seed int64, entities int) error {
	if client == nil {
		client = &http.Client{}
	}
	if entities <= 0 {
		entities = 60
	}
	people := datagen.Persons.Generate(seed, entities)

	left := datagen.ObserveShuffled(datagen.Persons, people, datagen.SourceSpec{
		Alias:    aliasLeft,
		Coverage: 0.9,
		TypoRate: 0.05,
		NullRate: 0.02,
		Seed:     seed + 1,
	})
	right := datagen.ObserveShuffled(datagen.Persons, people, datagen.SourceSpec{
		Alias: aliasRight,
		Renames: map[string]string{
			"Name": "FullName", "Age": "Years", "City": "Town",
			"Email": "Mail", "Phone": "Tel",
		},
		Coverage: 0.9,
		TypoRate: 0.05,
		NullRate: 0.02,
		Seed:     seed + 2,
	})
	big := datagen.DirtyTable(datagen.Persons, people, 2, datagen.SourceSpec{
		Alias:    aliasBig,
		TypoRate: 0.08,
		NullRate: 0.05,
		Seed:     seed + 3,
	})

	for _, obs := range []*datagen.Observation{left, right, big} {
		if err := registerInline(ctx, client, baseURL, obs); err != nil {
			return err
		}
	}
	return nil
}

func registerInline(ctx context.Context, client *http.Client, baseURL string, obs *datagen.Observation) error {
	rel := obs.Rel
	cols := rel.Schema().Names()
	rows := make([][]string, rel.Len())
	for i := 0; i < rel.Len(); i++ {
		row := rel.Row(i)
		cells := make([]string, len(cols))
		for j := range cols {
			cells[j] = row[j].Text()
		}
		rows[i] = cells
	}
	payload, err := json.Marshal(map[string]any{
		"alias":   rel.Name(),
		"kind":    "inline",
		"columns": cols,
		"rows":    rows,
		"replace": true,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/sources", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen setup: register %s: %w", rel.Name(), err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("loadgen setup: register %s: status %d: %s", rel.Name(), resp.StatusCode, body)
	}
	return nil
}
