package loadgen

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hummer"
	"hummer/internal/server"
)

// overloadStats is the slice of /v1/stats the burst test reconciles
// against the client-side counts.
type overloadStats struct {
	RejectedQueries       uint64 `json:"rejected_queries"`
	AdmissionWaitTimeouts uint64 `json:"admission_wait_timeouts"`
	ClientDisconnects     uint64 `json:"client_disconnects"`
}

func readStats(t *testing.T, client *http.Client, baseURL string) overloadStats {
	t.Helper()
	resp, err := client.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st overloadStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats: %v in %s", err, body)
	}
	return st
}

// TestBurstAdmission drives a burst through the loadgen library at a
// server with a single query slot and a tiny admission queue, and
// asserts the full overload alphabet appears — 200 (admitted), 429
// (queue full), 503 (admission wait expired), and client-side
// cancellations (the server's 499) — that every overload response
// carried Retry-After, and that the server's own overload counters
// reconcile exactly with what the clients saw.
func TestBurstAdmission(t *testing.T) {
	db := hummer.New()
	// A wizard hook pins the service time: hooks run on every query
	// (even cache-warm ones) and disable the fused-result cache, so
	// each admitted fusion holds the slot for ~60ms.
	db.OnCorrespondences(func(alias string, proposed []hummer.Correspondence) []hummer.Correspondence {
		time.Sleep(60 * time.Millisecond)
		return proposed
	})
	ts := newBurstTarget(t, db)
	client := ts.Client()
	ctx := context.Background()
	if err := Setup(ctx, client, ts.URL, 5, 12); err != nil {
		t.Fatal(err)
	}

	// Phase 1 — saturation: 8 closed-loop workers against 1 slot + a
	// 1-deep queue with a 40ms wait, service time 60ms. The first wave
	// alone pins the outcome set: one worker takes the slot (an
	// eventual 200), one queues and times out at 40ms < 60ms (503),
	// the rest bounce off the full queue (429).
	satRes, err := Run(ctx, Config{
		BaseURL:     ts.URL,
		Client:      client,
		Seed:        5,
		Mode:        ModeClosed,
		Classes:     []Class{{Name: "burst_fuse", Endpoint: EndpointQuery, SQL: FuseSQL, Weight: 1}},
		Concurrency: 8,
		Requests:    40,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range []string{"200", "429", "503"} {
		if satRes.Statuses[code] == 0 {
			t.Errorf("saturation phase produced no %s: %v", code, satRes.Statuses)
		}
	}
	for code := range satRes.Statuses {
		switch code {
		case "200", "429", "503":
		default:
			t.Errorf("saturation phase produced unexpected status %q: %v", code, satRes.Statuses)
		}
	}

	// Phase 2 — hangups: clients with a 15ms budget against the 60ms
	// service. An admitted request is cancelled mid-pipeline, a queued
	// one while waiting; either way the client walks away and the
	// server records a 499.
	hangRes, err := Run(ctx, Config{
		BaseURL: ts.URL,
		Client:  client,
		Seed:    6,
		Mode:    ModeClosed,
		Classes: []Class{{Name: "hangup_fuse", Endpoint: EndpointQuery, SQL: FuseSQL,
			Weight: 1, Timeout: 15 * time.Millisecond}},
		Concurrency: 2,
		Requests:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hangRes.Statuses["canceled"] == 0 {
		t.Errorf("hangup phase produced no cancellations: %v", hangRes.Statuses)
	}
	for code := range hangRes.Statuses {
		switch code {
		case "canceled", "429":
		default:
			t.Errorf("hangup phase produced unexpected status %q: %v", code, hangRes.Statuses)
		}
	}

	// Exactly the advertised status mix across the burst, and not one
	// overload response without a Retry-After hint.
	total := map[string]int{}
	missing := 0
	for _, res := range []*Result{satRes, hangRes} {
		for code, n := range res.Statuses {
			total[code] += n
		}
		for _, cr := range res.Classes {
			missing += cr.RetryAfterMissing
		}
	}
	for _, code := range []string{"200", "429", "503", "canceled"} {
		if total[code] == 0 {
			t.Errorf("burst never produced %s: %v", code, total)
		}
	}
	if len(total) != 4 {
		t.Errorf("burst status mix = %v, want exactly {200, 429, 503, canceled}", total)
	}
	if missing != 0 {
		t.Errorf("%d overload responses arrived without Retry-After", missing)
	}

	// The server's ledger must agree with the clients'. Three exact
	// invariants (the disconnect bookkeeping lands after the abandoned
	// pipeline unwinds, so poll):
	//   rejected = client 429s + wait timeouts   (503s increment both)
	//   wait timeouts >= client 503s             (each received 503 was one)
	//   wait timeouts + disconnects = client 503s + cancellations
	// The last is an equality rather than per-counter matches because
	// a client that hangs up while queued races the server's wait
	// timer: the server records a disconnect or — if the timer fires
	// before it notices the closed connection — a 503 written to a
	// dead socket. Either way the request lands in exactly one of the
	// two counters.
	wantOverload := uint64(total["503"] + total["canceled"])
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := readStats(t, client, ts.URL)
		if st.RejectedQueries == uint64(total["429"])+st.AdmissionWaitTimeouts &&
			st.AdmissionWaitTimeouts >= uint64(total["503"]) &&
			st.AdmissionWaitTimeouts+st.ClientDisconnects == wantOverload {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server counters never reconciled: got %+v, client saw %v", st, total)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// newBurstTarget serves the DB behind one query slot and a 1-deep,
// 40ms admission queue — the smallest server that can produce every
// overload status.
func newBurstTarget(t *testing.T, db *hummer.DB) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(db,
		server.WithMaxInflight(1),
		server.WithAdmissionWait(1, 40*time.Millisecond)).Handler())
	t.Cleanup(ts.Close)
	return ts
}
