// Package loadgen drives realistic concurrent traffic against a live
// hummerd over HTTP and measures what the server microbenchmarks
// cannot: per-class latency distributions (p50/p95/p99, plus
// time-to-first-row for NDJSON streams), error and overload class
// counts, and throughput — under open-loop (Poisson or constant-rate
// arrivals, optionally ramped through phases) or closed-loop (fixed
// concurrency) load.
//
// The request schedule is generated up front from a seed: the same
// seed always produces the identical sequence of (arrival offset,
// class) pairs, so two runs against the same server are directly
// comparable and a schedule can be fingerprinted into the benchmark
// trajectory. What is NOT deterministic is the measured side — the
// interleaving of closed-loop workers and every latency — which is
// the point: the schedule is the controlled variable, the latencies
// are the experiment.
//
// Workload shapes follow the open/closed-loop arrival-generation
// design of inference-sim's workload package; measurement discipline
// (seeded schedules, explicit status accounting) follows the BLIS
// experiment standards: statistical hypotheses need >= 3 seeds and a
// >20% directional effect across all of them before they count.
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hummer/internal/fault"
)

// Endpoint selects which hummerd API a class exercises.
type Endpoint string

const (
	// EndpointQuery posts to /v1/query (materialized response).
	EndpointQuery Endpoint = "query"
	// EndpointStream posts to /v1/query/stream (NDJSON rows); the
	// class records time-to-first-row.
	EndpointStream Endpoint = "stream"
	// EndpointBatch posts to /v1/batch (several statements, one slot).
	EndpointBatch Endpoint = "batch"
)

// Class is one kind of request in the workload mix.
type Class struct {
	// Name labels the class in results ("warm_fuse", "select_stream").
	Name string `json:"name"`
	// Endpoint selects the API.
	Endpoint Endpoint `json:"endpoint"`
	// SQL is the statement (query/stream endpoints).
	SQL string `json:"sql,omitempty"`
	// Statements is the batch payload (batch endpoint).
	Statements []string `json:"statements,omitempty"`
	// Lineage requests per-cell provenance.
	Lineage bool `json:"lineage,omitempty"`
	// Weight is the class's relative frequency in the mix; 0 drops it.
	Weight int `json:"weight"`
	// Purge empties the server's artifact cache immediately before
	// each request of this class — the cold-cache class. The purge is
	// not part of the measured latency, but note that under concurrent
	// load it also chills every other class's next cache lookup.
	Purge bool `json:"purge,omitempty"`
	// Timeout cancels the request client-side after this long (0 =
	// none). Cancelled requests are recorded under the "canceled"
	// status — the server logs them as 499s.
	Timeout time.Duration `json:"timeout,omitempty"`
}

// Mode is the arrival discipline.
type Mode string

const (
	// ModeClosed runs a fixed number of concurrent workers, each
	// issuing its next request as soon as the previous one completes —
	// throughput-bounded, the classic benchmark loop.
	ModeClosed Mode = "closed"
	// ModeOpen fires requests at scheduled wall-clock offsets
	// regardless of completions — latency under a given offered load,
	// the discipline that actually surfaces queueing delay.
	ModeOpen Mode = "open"
)

// Arrival is the open-loop interarrival process.
type Arrival string

const (
	// ArrivalPoisson draws exponential interarrivals (memoryless
	// arrivals at the phase rate).
	ArrivalPoisson Arrival = "poisson"
	// ArrivalConstant spaces arrivals exactly 1/rate apart.
	ArrivalConstant Arrival = "constant"
)

// Phase is one segment of an open-loop ramp profile: hold rate
// requests/second for Duration.
type Phase struct {
	Duration time.Duration `json:"duration"`
	Rate     float64       `json:"rate"`
}

// Config describes one load run.
type Config struct {
	// BaseURL roots the target server ("http://127.0.0.1:8080").
	BaseURL string
	// Client is the HTTP client to use; nil uses a dedicated client
	// with no global timeout (per-class timeouts still apply).
	Client *http.Client
	// Seed determines the request schedule completely.
	Seed int64
	// Mode selects closed- or open-loop arrivals.
	Mode Mode
	// Classes is the workload mix; entries with Weight <= 0 are
	// dropped.
	Classes []Class

	// Concurrency and Requests configure ModeClosed: Concurrency
	// workers drain a schedule of Requests requests.
	Concurrency int
	Requests    int

	// Arrival and Phases configure ModeOpen: each phase holds its rate
	// for its duration. A run's request count follows from the seeded
	// draw, not from Requests.
	Arrival Arrival
	Phases  []Phase
}

// Request is one scheduled request: which class, and (open loop) when
// to fire relative to the run's start.
type Request struct {
	Index int           `json:"index"`
	Class int           `json:"class"`
	At    time.Duration `json:"at"`
}

// Schedule generates the run's deterministic request schedule from
// the seed. Calling it twice with the same Config yields identical
// schedules; Run uses exactly this schedule.
func Schedule(cfg Config) ([]Request, error) {
	classes := activeClasses(cfg.Classes)
	if len(classes) == 0 {
		return nil, fmt.Errorf("loadgen: no class has a positive weight")
	}
	total := 0
	for _, c := range classes {
		total += cfg.Classes[c].Weight
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pick := func() int {
		n := rng.Intn(total)
		for _, c := range classes {
			if n -= cfg.Classes[c].Weight; n < 0 {
				return c
			}
		}
		return classes[len(classes)-1]
	}

	switch cfg.Mode {
	case ModeClosed, "":
		if cfg.Requests <= 0 {
			return nil, fmt.Errorf("loadgen: closed-loop mode needs Requests > 0")
		}
		out := make([]Request, cfg.Requests)
		for i := range out {
			out[i] = Request{Index: i, Class: pick()}
		}
		return out, nil
	case ModeOpen:
		if len(cfg.Phases) == 0 {
			return nil, fmt.Errorf("loadgen: open-loop mode needs at least one phase")
		}
		var out []Request
		base := time.Duration(0)
		for pi, ph := range cfg.Phases {
			if ph.Rate <= 0 || ph.Duration <= 0 {
				return nil, fmt.Errorf("loadgen: phase %d needs positive rate and duration", pi)
			}
			t := time.Duration(0)
			for {
				var gap time.Duration
				switch cfg.Arrival {
				case ArrivalConstant:
					gap = time.Duration(float64(time.Second) / ph.Rate)
				case ArrivalPoisson, "":
					gap = time.Duration(rng.ExpFloat64() * float64(time.Second) / ph.Rate)
				default:
					return nil, fmt.Errorf("loadgen: unknown arrival process %q", cfg.Arrival)
				}
				t += gap
				if t >= ph.Duration {
					break
				}
				out = append(out, Request{Index: len(out), Class: pick(), At: base + t})
			}
			base += ph.Duration
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("loadgen: schedule is empty (rate too low for the phase durations)")
		}
		return out, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown mode %q", cfg.Mode)
	}
}

// Fingerprint hashes a schedule (indices, classes, offsets) to a
// stable hex token: equal fingerprints certify identical request
// schedules, the determinism half of a repeatable load experiment.
func Fingerprint(schedule []Request) string {
	h := fnv.New64a()
	var buf [8 * 3]byte
	for _, r := range schedule {
		binary.LittleEndian.PutUint64(buf[0:], uint64(r.Index))
		binary.LittleEndian.PutUint64(buf[8:], uint64(r.Class))
		binary.LittleEndian.PutUint64(buf[16:], uint64(r.At))
		_, _ = h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func activeClasses(classes []Class) []int {
	var out []int
	for i, c := range classes {
		if c.Weight > 0 {
			out = append(out, i)
		}
	}
	return out
}

// sample is one completed request's measurement.
type sample struct {
	class    int
	status   int  // HTTP status; 0 when the request never got one
	canceled bool // client-side timeout fired
	failed   bool // transport error other than cancellation
	latency  time.Duration
	ttfr     time.Duration // time to first row record; < 0 when none
	rows     int64
	noRetry  bool // overload status without a Retry-After header
}

// Quantiles summarizes a latency sample set (nearest-rank
// percentiles over the successful requests).
type Quantiles struct {
	Count       int     `json:"count"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
}

func quantiles(secs []float64) Quantiles {
	q := Quantiles{Count: len(secs)}
	if len(secs) == 0 {
		return q
	}
	sort.Float64s(secs)
	sum := 0.0
	for _, s := range secs {
		sum += s
	}
	rank := func(p float64) float64 {
		i := int(p*float64(len(secs))+0.9999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(secs) {
			i = len(secs) - 1
		}
		return secs[i]
	}
	q.MeanSeconds = sum / float64(len(secs))
	q.P50Seconds = rank(0.50)
	q.P95Seconds = rank(0.95)
	q.P99Seconds = rank(0.99)
	q.MaxSeconds = secs[len(secs)-1]
	return q
}

// ClassResult aggregates one class's requests.
type ClassResult struct {
	Class    string `json:"class"`
	Endpoint string `json:"endpoint"`
	Requests int    `json:"requests"`
	// Statuses counts outcomes by HTTP status code ("200", "429", …),
	// plus "canceled" (client-side timeout; the server's 499) and
	// "error" (transport failure).
	Statuses map[string]int `json:"statuses"`
	// RetryAfterMissing counts overload responses (429/503/504) that
	// arrived WITHOUT a Retry-After header — always 0 against a
	// well-behaved hummerd.
	RetryAfterMissing int `json:"retry_after_missing"`
	// Rows counts NDJSON row records read (stream classes).
	Rows int64 `json:"rows"`
	// Latency summarizes the 2xx requests' total wall clock.
	Latency Quantiles `json:"latency"`
	// TTFR summarizes time from request start to the first NDJSON row
	// record (stream classes with at least one row).
	TTFR *Quantiles `json:"ttfr,omitempty"`
}

// Result is one load run's full measurement.
type Result struct {
	Seed                int64          `json:"seed"`
	Mode                string         `json:"mode"`
	ScheduleRequests    int            `json:"schedule_requests"`
	ScheduleFingerprint string         `json:"schedule_fingerprint"`
	ElapsedSeconds      float64        `json:"elapsed_seconds"`
	ThroughputRPS       float64        `json:"throughput_rps"`
	Statuses            map[string]int `json:"statuses"`
	Classes             []ClassResult  `json:"classes"`
}

// Run executes the seeded schedule against cfg.BaseURL and aggregates
// the measurements. ctx cancels the whole run (in-flight requests are
// abandoned and counted as canceled).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	schedule, err := Schedule(cfg)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	samples := make([]sample, len(schedule))
	start := time.Now()

	// Containment: a panic in a request worker becomes the run's
	// error, never a dead harness mid-experiment. First panic wins;
	// the worker that recovered simply stops issuing requests.
	var panicMu sync.Mutex
	var panicErr error
	recordPanic := func(r any) {
		panicMu.Lock()
		if panicErr == nil {
			panicErr = fault.NewInternal("loadgen.worker", r)
		}
		panicMu.Unlock()
	}

	switch cfg.Mode {
	case ModeClosed, "":
		workers := cfg.Concurrency
		if workers <= 0 {
			workers = 1
		}
		if workers > len(schedule) {
			workers = len(schedule)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						recordPanic(r)
					}
				}()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(schedule) || ctx.Err() != nil {
						return
					}
					samples[i] = execOne(ctx, client, cfg.BaseURL, schedule[i].Class, cfg.Classes[schedule[i].Class])
				}
			}()
		}
		wg.Wait()
	case ModeOpen:
		var wg sync.WaitGroup
		for _, req := range schedule {
			if ctx.Err() != nil {
				break
			}
			if d := req.At - time.Since(start); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
				}
			}
			wg.Add(1)
			go func(req Request) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						recordPanic(r)
					}
				}()
				samples[req.Index] = execOne(ctx, client, cfg.BaseURL, req.Class, cfg.Classes[req.Class])
			}(req)
		}
		wg.Wait()
	}

	if panicErr != nil {
		return nil, panicErr
	}
	elapsed := time.Since(start)
	return aggregate(cfg, schedule, samples, elapsed), nil
}

func aggregate(cfg Config, schedule []Request, samples []sample, elapsed time.Duration) *Result {
	res := &Result{
		Seed:                cfg.Seed,
		Mode:                string(cfg.Mode),
		ScheduleRequests:    len(schedule),
		ScheduleFingerprint: Fingerprint(schedule),
		ElapsedSeconds:      elapsed.Seconds(),
		Statuses:            map[string]int{},
	}
	if res.Mode == "" {
		res.Mode = string(ModeClosed)
	}
	if elapsed > 0 {
		res.ThroughputRPS = float64(len(samples)) / elapsed.Seconds()
	}
	byClass := map[int][]sample{}
	for _, s := range samples {
		byClass[s.class] = append(byClass[s.class], s)
	}
	var classIdxs []int
	for ci := range byClass {
		classIdxs = append(classIdxs, ci)
	}
	sort.Ints(classIdxs)
	for _, ci := range classIdxs {
		cl := cfg.Classes[ci]
		cr := ClassResult{
			Class:    cl.Name,
			Endpoint: string(cl.Endpoint),
			Statuses: map[string]int{},
		}
		var oks, ttfrs []float64
		for _, s := range byClass[ci] {
			cr.Requests++
			key := statusKey(s)
			cr.Statuses[key]++
			res.Statuses[key]++
			if s.noRetry {
				cr.RetryAfterMissing++
			}
			cr.Rows += s.rows
			if s.status >= 200 && s.status < 300 {
				oks = append(oks, s.latency.Seconds())
				if s.ttfr >= 0 {
					ttfrs = append(ttfrs, s.ttfr.Seconds())
				}
			}
		}
		cr.Latency = quantiles(oks)
		if len(ttfrs) > 0 {
			q := quantiles(ttfrs)
			cr.TTFR = &q
		}
		res.Classes = append(res.Classes, cr)
	}
	return res
}

func statusKey(s sample) string {
	switch {
	case s.canceled:
		return "canceled"
	case s.failed || s.status == 0:
		return "error"
	default:
		return strconv.Itoa(s.status)
	}
}

// execOne performs one request of the class and measures it.
func execOne(ctx context.Context, client *http.Client, baseURL string, classIdx int, cl Class) sample {
	s := sample{class: classIdx, ttfr: -1}
	if cl.Purge {
		// Cold-cache class: drop every cached artifact first. The purge
		// round-trip is deliberately outside the measured latency.
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, baseURL+"/v1/cache", nil)
		if err == nil {
			if resp, err := client.Do(req); err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}
	}

	reqCtx := ctx
	var cancel context.CancelFunc
	if cl.Timeout > 0 {
		reqCtx, cancel = context.WithTimeout(ctx, cl.Timeout)
		defer cancel()
	}

	var path string
	var body any
	switch cl.Endpoint {
	case EndpointStream:
		path = "/v1/query/stream"
		body = map[string]any{"sql": cl.SQL, "lineage": cl.Lineage}
	case EndpointBatch:
		path = "/v1/batch"
		body = map[string]any{"statements": cl.Statements, "lineage": cl.Lineage}
	default:
		path = "/v1/query"
		body = map[string]any{"sql": cl.SQL, "lineage": cl.Lineage}
	}
	payload, err := json.Marshal(body)
	if err != nil {
		s.failed = true
		return s
	}

	start := time.Now()
	fail := func() sample {
		s.latency = time.Since(start)
		if reqCtx.Err() != nil && errors.Is(reqCtx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
			s.canceled = true
		} else {
			s.failed = true
		}
		return s
	}
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, baseURL+path, bytes.NewReader(payload))
	if err != nil {
		s.failed = true
		return s
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fail()
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	if isOverload(resp.StatusCode) && resp.Header.Get("Retry-After") == "" {
		s.noRetry = true
	}

	if cl.Endpoint == EndpointStream && resp.StatusCode == http.StatusOK {
		// Read the NDJSON incrementally: the first `"type":"row"` line
		// stamps time-to-first-row.
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			if bytes.HasPrefix(sc.Bytes(), []byte(`{"type":"row"`)) {
				if s.ttfr < 0 {
					s.ttfr = time.Since(start)
				}
				s.rows++
			}
		}
		if sc.Err() != nil {
			return fail()
		}
	} else {
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return fail()
		}
	}
	s.latency = time.Since(start)
	return s
}

func isOverload(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}
