package eval

import (
	"math"
	"testing"

	"hummer/internal/dumas"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewPRF(t *testing.T) {
	m := NewPRF(8, 2, 2)
	if !approx(m.Precision, 0.8) || !approx(m.Recall, 0.8) || !approx(m.F1, 0.8) {
		t.Errorf("PRF = %+v", m)
	}
	perfect := NewPRF(0, 0, 0)
	if perfect.Precision != 1 || perfect.Recall != 1 {
		t.Errorf("empty-vs-empty must be perfect: %+v", perfect)
	}
	zeroP := NewPRF(0, 5, 0)
	if zeroP.Precision != 0 {
		t.Errorf("all-FP precision = %g", zeroP.Precision)
	}
	zeroR := NewPRF(0, 0, 5)
	if zeroR.Recall != 0 {
		t.Errorf("all-FN recall = %g", zeroR.Recall)
	}
	if zeroR.F1 != 0 {
		t.Errorf("F1 with zero recall = %g", zeroR.F1)
	}
}

func TestMatching(t *testing.T) {
	truth := map[string]string{"Name": "FullName", "Age": "Years", "City": "Town"}
	predicted := []dumas.Correspondence{
		{LeftCol: "Name", RightCol: "FullName"}, // TP
		{LeftCol: "Age", RightCol: "Town"},      // FP (wrong partner)
		// City unmatched → FN; Age's true partner missed → counted via FN of Age.
	}
	m := Matching(predicted, truth)
	if m.TP != 1 || m.FP != 1 || m.FN != 2 {
		t.Errorf("counts = TP%d FP%d FN%d, want 1/1/2", m.TP, m.FP, m.FN)
	}
}

func TestMatchingCaseInsensitive(t *testing.T) {
	truth := map[string]string{"name": "fullname"}
	predicted := []dumas.Correspondence{{LeftCol: "Name", RightCol: "FullName"}}
	m := Matching(predicted, truth)
	if m.TP != 1 || m.FP != 0 || m.FN != 0 {
		t.Errorf("case-insensitive matching failed: %+v", m)
	}
}

func TestMatchingExtraPrediction(t *testing.T) {
	truth := map[string]string{}
	predicted := []dumas.Correspondence{{LeftCol: "A", RightCol: "B"}}
	m := Matching(predicted, truth)
	if m.FP != 1 || m.Precision != 0 {
		t.Errorf("spurious correspondence: %+v", m)
	}
}

func TestDuplicatePairsPerfect(t *testing.T) {
	pred := []int{0, 0, 1, 2, 2}
	m := DuplicatePairs(pred, pred)
	if m.Precision != 1 || m.Recall != 1 {
		t.Errorf("identical clustering must be perfect: %+v", m)
	}
}

func TestDuplicatePairsCounts(t *testing.T) {
	// Truth: {0,1} together, {2,3} together.
	truth := []int{0, 0, 1, 1}
	// Prediction: {0,1,2} together, 3 alone.
	pred := []int{5, 5, 5, 6}
	// Pairs: (0,1) TP; (0,2),(1,2) FP; (2,3) FN.
	m := DuplicatePairs(pred, truth)
	if m.TP != 1 || m.FP != 2 || m.FN != 1 {
		t.Errorf("counts = TP%d FP%d FN%d", m.TP, m.FP, m.FN)
	}
}

func TestDuplicatePairsAllSingletons(t *testing.T) {
	truth := []int{0, 0, 1}
	pred := []int{0, 1, 2}
	m := DuplicatePairs(pred, truth)
	if m.TP != 0 || m.Recall != 0 {
		t.Errorf("singleton prediction: %+v", m)
	}
	// Precision with no predicted pairs and missed truth: 0 TP, 0 FP, 1 FN.
	if m.Precision != 0 {
		// NewPRF: tp+fp==0 and fn>0 → precision 0.
		t.Errorf("precision = %g", m.Precision)
	}
}

func TestDuplicatePairsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DuplicatePairs([]int{1}, []int{1, 2})
}

func TestClusterCount(t *testing.T) {
	if got := ClusterCount([]int{3, 3, 1, 4, 1}); got != 3 {
		t.Errorf("ClusterCount = %d", got)
	}
	if got := ClusterCount(nil); got != 0 {
		t.Errorf("ClusterCount(nil) = %d", got)
	}
}
