// Package eval scores HumMer's components against the ground truth
// the data generators attach: precision / recall / F1 for schema
// matching (attribute correspondences) and duplicate detection
// (duplicate pairs), the standard metrics of the DUMAS and DogmatiX
// evaluations.
package eval

import (
	"strings"

	"hummer/internal/dumas"
)

// PRF bundles precision, recall and F1.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
	// TP, FP, FN are the underlying counts.
	TP, FP, FN int
}

// NewPRF computes the metrics from counts. An empty prediction set
// against an empty truth set is perfect.
func NewPRF(tp, fp, fn int) PRF {
	m := PRF{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		m.Precision = float64(tp) / float64(tp+fp)
	} else if fn == 0 {
		m.Precision = 1
	}
	if tp+fn > 0 {
		m.Recall = float64(tp) / float64(tp+fn)
	} else {
		m.Recall = 1
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// Matching scores attribute correspondences against the truth map
// (left attribute → right attribute, case-insensitive). Predicted
// correspondences not in truth count as false positives; truth entries
// never predicted count as false negatives.
func Matching(predicted []dumas.Correspondence, truth map[string]string) PRF {
	tp, fp := 0, 0
	seen := map[string]bool{}
	for _, c := range predicted {
		want, ok := lookupFold(truth, c.LeftCol)
		if ok && strings.EqualFold(want, c.RightCol) {
			tp++
			seen[strings.ToLower(c.LeftCol)] = true
		} else {
			fp++
		}
	}
	fn := 0
	for l := range truth {
		if !seen[strings.ToLower(l)] {
			fn++
		}
	}
	return NewPRF(tp, fp, fn)
}

func lookupFold(m map[string]string, key string) (string, bool) {
	for k, v := range m {
		if strings.EqualFold(k, key) {
			return v, true
		}
	}
	return "", false
}

// DuplicatePairs scores a clustering against truth entity ids: every
// unordered row pair sharing a predicted cluster is a predicted
// duplicate; every pair sharing a true entity is a true duplicate.
// This is the pairwise precision/recall standard in duplicate
// detection.
func DuplicatePairs(predicted []int, truth []int) PRF {
	n := len(predicted)
	if len(truth) != n {
		panic("eval: prediction and truth length differ")
	}
	tp, fp, fn := 0, 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pred := predicted[i] == predicted[j]
			real := truth[i] == truth[j]
			switch {
			case pred && real:
				tp++
			case pred && !real:
				fp++
			case !pred && real:
				fn++
			}
		}
	}
	return NewPRF(tp, fp, fn)
}

// ClusterCount returns the number of distinct cluster ids.
func ClusterCount(ids []int) int {
	seen := map[int]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	return len(seen)
}
