package hummer

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func studentDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db := New(opts...)
	ee := NewTable("EE_Student", "Name", "Age", "City").
		AddText("Jonathan Smith", "21", "Berlin").
		AddText("Maria Garcia", "24", "Hamburg").
		AddText("Wei Chen", "21", "Munich").
		AddText("Aisha Khan", "23", "Cologne").
		Build()
	cs := NewTable("CS_Students", "FullName", "Semester", "Years", "Town").
		AddText("Jonathan Smith", "4", "22", "Berlin").
		AddText("Wei Chen", "2", "21", "Munich").
		AddText("Lena Fischer", "1", "20", "Stuttgart").
		Build()
	if err := db.RegisterTable("EE_Student", ee); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterTable("CS_Students", cs); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIPaperQuery(t *testing.T) {
	db := studentDB(t)
	res, err := db.Query(`
		SELECT Name, RESOLVE(Age, max)
		FUSE FROM EE_Student, CS_Students
		FUSE BY (Name)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 5 {
		t.Fatalf("rows = %d, want 5:\n%s", res.Rel.Len(), res.Rel)
	}
}

func TestSourcesAndTable(t *testing.T) {
	db := studentDB(t)
	srcs := db.Sources()
	if len(srcs) != 2 {
		t.Fatalf("sources = %v", srcs)
	}
	rel, err := db.Table("EE_Student")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Errorf("rows = %d", rel.Len())
	}
}

func TestCustomResolutionFunction(t *testing.T) {
	db := studentDB(t)
	db.RegisterResolution("tagged", func(ctx *ResolutionContext, _ string) (Value, error) {
		vals, _ := ctx.NonNull()
		if len(vals) == 0 {
			return Null, nil
		}
		return NewString("tag:" + vals[0].Text()), nil
	})
	res, err := db.Query(`SELECT Name, RESOLVE(City, tagged)
		FUSE FROM EE_Student, CS_Students FUSE BY (Name)`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < res.Rel.Len(); i++ {
		if v := res.Rel.Value(i, "City"); !v.IsNull() && len(v.Text()) > 4 && v.Text()[:4] == "tag:" {
			found = true
		}
	}
	if !found {
		t.Errorf("custom function not applied:\n%s", res.Rel)
	}
	names := db.ResolutionFunctions()
	has := false
	for _, n := range names {
		if n == "tagged" {
			has = true
		}
	}
	if !has {
		t.Errorf("registered function missing from %v", names)
	}
}

func TestProgrammaticFuse(t *testing.T) {
	db := studentDB(t)
	res, err := db.Fuse([]string{"EE_Student", "CS_Students"}, PipelineOptions{
		FuseBy: []string{"Name"},
		Rules:  map[string]ResolutionSpec{"Age": {Name: "max"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fused.Rel.Len() != 5 {
		t.Errorf("fused rows = %d", res.Fused.Rel.Len())
	}
	if res.Merged == nil || res.Detection == nil {
		t.Error("pipeline intermediates missing")
	}
}

func TestWizardHooksExposed(t *testing.T) {
	db := studentDB(t)
	matchSeen := false
	db.OnCorrespondences(func(alias string, proposed []Correspondence) []Correspondence {
		matchSeen = true
		return proposed
	})
	attrsSeen := false
	db.OnAttributes(func(proposed []string) []string {
		attrsSeen = true
		return proposed
	})
	dupsSeen := false
	db.OnDuplicates(func(det *Detection, merged *Relation) []int {
		dupsSeen = true
		return nil
	})
	if _, err := db.Fuse([]string{"EE_Student", "CS_Students"}, PipelineOptions{}); err != nil {
		t.Fatal(err)
	}
	if !matchSeen || !attrsSeen || !dupsSeen {
		t.Errorf("hooks fired: match=%v attrs=%v dups=%v", matchSeen, attrsSeen, dupsSeen)
	}
	// Reset to automatic.
	db.OnDuplicates(nil)
	if _, err := db.Fuse([]string{"EE_Student"}, PipelineOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestFileRegistration(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "a.csv")
	os.WriteFile(csvPath, []byte("Name,Price\nAbbey Road,12.99\n"), 0o644)
	jsonPath := filepath.Join(dir, "b.json")
	os.WriteFile(jsonPath, []byte(`[{"Name": "Abbey Road", "Price": 11.49}]`), 0o644)
	xmlPath := filepath.Join(dir, "c.xml")
	os.WriteFile(xmlPath, []byte(`<cat><cd><Name>Abbey Road</Name><Price>13.49</Price></cd></cat>`), 0o644)

	db := New()
	if err := db.RegisterCSV("shopA", csvPath); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterJSON("shopB", jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterXML("shopC", xmlPath, "cd"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT Name, RESOLVE(Price, min)
		FUSE FROM shopA, shopB, shopC FUSE BY (Name)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 1 {
		t.Fatalf("rows = %d, want 1 fused CD:\n%s", res.Rel.Len(), res.Rel)
	}
	if got := res.Rel.Value(0, "Price"); got.Float() != 11.49 {
		t.Errorf("min price = %v", got)
	}
}

func TestLineageExposed(t *testing.T) {
	db := studentDB(t)
	res, err := db.Query(`SELECT Name, RESOLVE(Age, max)
		FUSE FROM EE_Student, CS_Students FUSE BY (Name)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lineage) != res.Rel.Len() {
		t.Fatalf("lineage rows = %d", len(res.Lineage))
	}
	// Every non-null cell must have lineage.
	for i := 0; i < res.Rel.Len(); i++ {
		for j := 0; j < res.Rel.Schema().Len(); j++ {
			if !res.Rel.Row(i)[j].IsNull() && res.Lineage[i][j].IsEmpty() {
				t.Errorf("cell (%d,%d) lacks lineage", i, j)
			}
		}
	}
}

func ExampleDB_Query() {
	db := New()
	ee := NewTable("EE_Student", "Name", "Age").
		AddText("Jonathan Smith", "21").
		AddText("Maria Garcia", "24").
		Build()
	cs := NewTable("CS_Students", "FullName", "Years").
		AddText("Jonathan Smith", "22").
		Build()
	db.RegisterTable("EE_Student", ee)
	db.RegisterTable("CS_Students", cs)

	res, _ := db.Query(`
		SELECT Name, RESOLVE(Age, max)
		FUSE FROM EE_Student, CS_Students
		FUSE BY (Name)
		ORDER BY Name`)
	for i := 0; i < res.Rel.Len(); i++ {
		fmt.Printf("%s %s\n", res.Rel.Value(i, "Name"), res.Rel.Value(i, "Age"))
	}
	// Output:
	// Jonathan Smith 22
	// Maria Garcia 24
}
