module hummer

go 1.24
