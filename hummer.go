// Package hummer is the public API of the Humboldt Merger (HumMer), a
// reproduction of "Automatic Data Fusion with HumMer" (Bilke,
// Bleiholder, Böhm, Draba, Naumann, Weis — VLDB 2005).
//
// HumMer fuses heterogeneous, duplicate-ridden, conflicting data in
// three fully automatic steps driven by a single query:
//
//  1. instance-based schema matching (DUMAS) aligns the attributes of
//     differently-labelled tables,
//  2. duplicate detection finds multiple representations of the same
//     real-world object, and
//  3. data fusion merges each duplicate group into one consistent
//     tuple, resolving value conflicts with per-column resolution
//     functions.
//
// The entry point is a DB: register data sources under aliases, then
// issue Fuse By queries:
//
//	db := hummer.New()
//	db.RegisterCSV("EE_Student", "ee.csv")
//	db.RegisterCSV("CS_Students", "cs.csv")
//	res, err := db.Query(`
//	    SELECT Name, RESOLVE(Age, max)
//	    FUSE FROM EE_Student, CS_Students
//	    FUSE BY (Name)`)
package hummer

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"hummer/internal/core"
	"hummer/internal/dumas"
	"hummer/internal/dupdetect"
	"hummer/internal/fault"
	"hummer/internal/fusion"
	"hummer/internal/lineage"
	"hummer/internal/metadata"
	"hummer/internal/parshard"
	"hummer/internal/plan"
	"hummer/internal/qcache"
	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

// Re-exported data-model types. These aliases let callers name the
// types the API returns without reaching into internal packages.
type (
	// Relation is an in-memory table: a schema plus rows of values.
	Relation = relation.Relation
	// Row is one tuple of a relation.
	Row = relation.Row
	// Value is a dynamically typed scalar (NULL, string, int, float,
	// bool, time).
	Value = value.Value
	// Schema is an ordered list of named, typed columns.
	Schema = schema.Schema
	// LineageSet names the sources and rows a fused value came from.
	LineageSet = lineage.Set
	// ResolutionSpec names a conflict-resolution function plus its
	// optional argument, e.g. {Name: "choose", Arg: "shopB"}.
	ResolutionSpec = fusion.Spec
	// ResolutionContext is the query context a custom resolution
	// function receives.
	ResolutionContext = fusion.Context
	// ResolutionFunc is a user-defined conflict-resolution function.
	ResolutionFunc = fusion.Func
	// PipelineResult exposes every intermediate of a fusion run
	// (sources, matches, merged table, detection, fused output).
	PipelineResult = core.Result
	// PipelineOptions configures a programmatic fusion run.
	PipelineOptions = core.Options
	// Correspondence is one matched attribute pair proposed by schema
	// matching.
	Correspondence = dumas.Correspondence
	// MatchResult is the full DUMAS schema-matching output:
	// correspondences, the duplicate tuple pairs they were derived
	// from, the averaged field-similarity matrix and discovery
	// statistics.
	MatchResult = dumas.Result
	// MatchConfig tunes DUMAS schema matching: the number of
	// duplicates used, similarity thresholds, candidate-generation
	// strategy (token index by default, Window for sorted-neighborhood,
	// QGrams for q-gram prefix blocking) and Parallelism (0 =
	// GOMAXPROCS; the result is byte-identical at every worker count).
	MatchConfig = dumas.Config
	// MatchStats reports the candidate counts of a matching run.
	MatchStats = dumas.Stats
	// Detection is the duplicate-detection output (clusters, scored
	// pairs, borderline cases, comparison statistics).
	Detection = dupdetect.Result
	// DetectionConfig tunes duplicate detection: threshold, attribute
	// selection, candidate-generation strategy (exhaustive, Window for
	// sorted-neighborhood, Blocking for prefix blocking, QGrams for
	// q-gram blocking) and Parallelism (0 = GOMAXPROCS; the result is
	// byte-identical at every worker count).
	DetectionConfig = dupdetect.Config
	// DetectionStats reports the comparison counts of a detection run.
	DetectionStats = dupdetect.Stats
	// CacheStats reports the artifact cache's traffic per artifact
	// kind (parsed plans, DUMAS matches, detection results).
	CacheStats = qcache.Stats
	// FusionSummary condenses what a fusion query's pipeline did —
	// the wizard visualization's numbers without the tables. Present
	// on every fusion Result (including slim cache hits) as
	// Result.Summary.
	FusionSummary = core.Summary
	// Rows is a streaming cursor over one query's result: Next/Scan/
	// Err/Close plus a Go 1.23 All() adapter. See DB.QueryRows.
	Rows = plan.Rows
	// InternalError is the typed error a contained panic becomes: it
	// records the goroutine boundary (Site), the recovered value and
	// the stack. Queries that hit one fail with this error (HTTP 500
	// in hummerd) while the process and the DB stay usable; match it
	// with errors.As.
	InternalError = fault.InternalError
	// Values re-exported for building rows and custom resolution
	// functions.
	Kind = value.Kind
)

// ErrAliasConflict is returned (wrapped) by the Register* methods
// when an alias is re-registered with different data; match it with
// errors.Is and use the Replace* methods to overwrite deliberately.
var ErrAliasConflict = metadata.ErrAliasConflict

// Value constructors, re-exported for convenience.
var (
	// Null is the NULL value.
	Null = value.Null
	// NewString wraps a string.
	NewString = value.NewString
	// NewInt wraps an int64.
	NewInt = value.NewInt
	// NewFloat wraps a float64.
	NewFloat = value.NewFloat
	// NewBool wraps a bool.
	NewBool = value.NewBool
	// NewTime wraps a time.Time.
	NewTime = value.NewTime
	// ParseValue infers the most specific value from raw text.
	ParseValue = value.Parse
)

// Result is the outcome of one query: the result table, per-cell
// lineage for fusion queries, and the pipeline intermediates.
type Result = plan.QueryResult

// DB is a HumMer instance: a metadata repository of registered
// sources, a resolution-function registry, a versioned artifact cache
// and a query executor. A DB is safe for concurrent use: queries may
// run in parallel with each other and with registrations —
// registered relations are treated as immutable, each query executes
// over a private snapshot of the configuration, and the expensive
// pipeline artifacts (DUMAS matches, duplicate detections, parsed
// plans) are shared through the fingerprint-keyed cache, where a
// thundering herd of identical queries computes each artifact once.
type DB struct {
	repo     *metadata.Repository
	registry *fusion.Registry
	cache    *qcache.Cache

	// mu guards the per-query configuration and wizard hooks below;
	// Query snapshots them so in-flight queries are unaffected by
	// concurrent Set* calls.
	mu                sync.RWMutex
	detect            dupdetect.Config
	match             dumas.Config
	parallelism       int
	onCorrespondences func(sourceAlias string, proposed []dumas.Correspondence) []dumas.Correspondence
	onAttributes      func(proposed []string) []string
	onDuplicates      func(det *dupdetect.Result, merged *relation.Relation) []int

	queries     atomic.Uint64
	fuseQueries atomic.Uint64
	queryErrors atomic.Uint64
}

// Option configures a DB at construction.
type Option func(*DB)

// WithCacheCapacity bounds the artifact cache to n entries (the
// default is qcache.DefaultCapacity). n <= 0 keeps the default.
func WithCacheCapacity(n int) Option {
	return func(db *DB) { db.cache = qcache.New(n) }
}

// WithoutCache disables the artifact cache: every query recomputes
// matching and detection from scratch (the seed behaviour).
func WithoutCache() Option {
	return func(db *DB) { db.cache = nil }
}

// WithParallelism sets the unified parallelism knob at construction —
// the construction-time form of SetParallelism.
func WithParallelism(n int) Option {
	return func(db *DB) { db.parallelism = n }
}

// New creates an empty HumMer instance with the built-in resolution
// functions (Coalesce, First, Last, Vote, Group, Concat, AnnConcat,
// Shortest, Longest, Choose, MostRecent, min, max, sum, avg, count,
// median, stddev) and a default-sized artifact cache.
func New(opts ...Option) *DB {
	db := &DB{
		repo:     metadata.NewRepository(),
		registry: fusion.NewRegistry(),
		cache:    qcache.New(0),
	}
	for _, o := range opts {
		o(db)
	}
	return db
}

// newPipeline builds a fresh pipeline over the shared repo, registry
// and cache with a snapshot of the current hooks, taken under one
// lock. Callers hold no lock.
func (db *DB) newPipeline() *core.Pipeline {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.newPipelineLocked()
}

func (db *DB) newPipelineLocked() *core.Pipeline {
	return &core.Pipeline{
		Repo:              db.repo,
		Registry:          db.registry,
		Cache:             db.cache,
		OnCorrespondences: db.onCorrespondences,
		OnAttributes:      db.onAttributes,
		OnDuplicates:      db.onDuplicates,
	}
}

// newExecutor builds a per-query executor with a snapshot of the
// current configuration and hooks, taken atomically under one lock,
// so concurrent Set*/On* calls never race with an in-flight query or
// tear its configuration. Per-query option overrides (WithDetectConfig,
// WithMatchConfig) replace the snapshot wholesale.
func (db *DB) newExecutor(cfg *queryConfig) *plan.Executor {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e := &plan.Executor{
		Repo:     db.repo,
		Registry: db.registry,
		Pipeline: db.newPipelineLocked(),
		Detect:   db.detect,
		Match:    db.match,
		Cache:    db.cache,
		Parallel: db.parallelism,
	}
	if cfg != nil {
		if cfg.detect != nil {
			e.Detect = *cfg.detect
		}
		if cfg.match != nil {
			e.Match = *cfg.match
		}
	}
	return e
}

// --- Per-query options ------------------------------------------------------

// queryConfig is the resolved form of a QueryOption list. The zero
// value reproduces the historical behaviour exactly.
type queryConfig struct {
	trace     bool
	noTrace   bool
	noLineage bool
	timeout   time.Duration
	detect    *dupdetect.Config
	match     *dumas.Config
}

func resolveOptions(opts []QueryOption) queryConfig {
	var cfg queryConfig
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

func (cfg *queryConfig) exec() plan.ExecOptions {
	return plan.ExecOptions{
		Trace:     cfg.trace,
		NoTrace:   cfg.noTrace,
		NoLineage: cfg.noLineage,
		Timeout:   cfg.timeout,
	}
}

// QueryOption configures one query. Options make trace intermediates
// and lineage opt-in/opt-out per query instead of DB-global state, and
// let a single statement carry its own pipeline configuration and
// deadline.
type QueryOption func(*queryConfig)

// WithTrace requests the pipeline intermediates: the Result's
// Pipeline field is guaranteed non-nil for fusion statements. A
// tracing query bypasses the fused-result cache tier (whose entries
// are slim and carry no intermediates) and recomputes the pipeline;
// the per-phase match/detect tiers still apply, so the recompute is
// cheap on a warm cache.
func WithTrace() QueryOption {
	return func(cfg *queryConfig) { cfg.trace = true }
}

// WithoutTrace drops the pipeline intermediates from the Result even
// when a cache-missing run computed them — the slimmest result for
// callers that only need the table (and, for fusion, the Summary).
// Servers use this: hummerd's endpoints never retain intermediates.
func WithoutTrace() QueryOption {
	return func(cfg *queryConfig) { cfg.noTrace = true }
}

// WithLineage includes (true, the historical default) or drops
// (false) the per-cell lineage of fusion results.
func WithLineage(on bool) QueryOption {
	return func(cfg *queryConfig) { cfg.noLineage = !on }
}

// WithDetectConfig runs this query with its own duplicate-detection
// configuration instead of the DB-wide SetDetectConfig default.
func WithDetectConfig(cfg DetectionConfig) QueryOption {
	return func(qc *queryConfig) { qc.detect = &cfg }
}

// WithMatchConfig runs this query with its own DUMAS schema-matching
// configuration instead of the DB-wide SetMatchConfig default.
func WithMatchConfig(cfg MatchConfig) QueryOption {
	return func(qc *queryConfig) { qc.match = &cfg }
}

// WithTimeout bounds this query with its own deadline, layered over
// (never extending) the caller's context. In a batch, the deadline
// applies to each statement individually.
func WithTimeout(d time.Duration) QueryOption {
	return func(cfg *queryConfig) {
		if d > 0 {
			cfg.timeout = d
		}
	}
}

// RegisterTable registers an in-memory relation under alias.
// Re-registering an alias with equal data is an idempotent no-op;
// re-registering it with different data returns an error (use
// ReplaceTable to overwrite deliberately).
func (db *DB) RegisterTable(alias string, rel *Relation) error {
	return db.repo.RegisterRelation(alias, rel)
}

// RegisterCSV registers a CSV file (first row = header) under alias.
func (db *DB) RegisterCSV(alias, path string) error {
	return db.repo.RegisterCSV(alias, path)
}

// RegisterJSON registers a JSON file (array of flat objects) under
// alias.
func (db *DB) RegisterJSON(alias, path string) error {
	return db.repo.RegisterJSON(alias, path)
}

// RegisterXML registers an XML file under alias; recordTag names the
// repeated element that forms one tuple.
func (db *DB) RegisterXML(alias, path, recordTag string) error {
	return db.repo.RegisterXML(alias, path, recordTag)
}

// ReplaceTable overwrites (or creates) the alias with a new in-memory
// relation, bumping the alias's generation. Cached artifacts derived
// from the old data stop being addressed — they are keyed by content
// fingerprints — and age out of the cache.
func (db *DB) ReplaceTable(alias string, rel *Relation) error {
	return db.repo.Replace(metadata.NewRelationSource(alias, rel))
}

// ReplaceCSV overwrites (or creates) the alias with a CSV file.
func (db *DB) ReplaceCSV(alias, path string) error {
	return db.repo.Replace(&metadata.CSVSource{AliasName: alias, Path: path})
}

// ReplaceJSON overwrites (or creates) the alias with a JSON file.
func (db *DB) ReplaceJSON(alias, path string) error {
	return db.repo.Replace(&metadata.JSONSource{AliasName: alias, Path: path})
}

// ReplaceXML overwrites (or creates) the alias with an XML file.
func (db *DB) ReplaceXML(alias, path, recordTag string) error {
	return db.repo.Replace(&metadata.XMLSource{AliasName: alias, Path: path, RecordTag: recordTag})
}

// InvalidateSource drops the alias's cached relational form and bumps
// its generation, so the next query re-loads the underlying file.
func (db *DB) InvalidateSource(alias string) { db.repo.Invalidate(alias) }

// Sources lists the registered aliases, sorted.
func (db *DB) Sources() []string { return db.repo.Aliases() }

// SourceGeneration returns the data-version counter of a registered
// alias: 1 after first registration, bumped by Replace*/
// InvalidateSource, 0 for unknown aliases.
func (db *DB) SourceGeneration(alias string) uint64 { return db.repo.Generation(alias) }

// SourceFingerprint returns the content fingerprint of the alias's
// relational form (loading it if needed) — the identity under which
// the artifact cache keys this source's work.
func (db *DB) SourceFingerprint(alias string) (string, error) { return db.repo.Fingerprint(alias) }

// Table loads (and caches) the relational form of a registered source.
func (db *DB) Table(alias string) (*Relation, error) { return db.repo.Get(alias) }

// RegisterResolution adds a custom conflict-resolution function; the
// name becomes usable in RESOLVE clauses (HumMer is extensible,
// paper §2.4).
func (db *DB) RegisterResolution(name string, f ResolutionFunc) {
	db.registry.Register(name, f)
}

// ResolutionFunctions lists the registered resolution-function names.
func (db *DB) ResolutionFunctions() []string { return db.registry.Names() }

// Query parses and executes a SELECT or FUSE BY statement. Safe for
// concurrent use: each call runs over a snapshot of the configuration
// and shares pipeline artifacts through the cache. It is QueryContext
// with a background context: it cannot be cancelled (though a
// WithTimeout option still bounds it).
func (db *DB) Query(sql string, opts ...QueryOption) (*Result, error) {
	return db.QueryContext(context.Background(), sql, opts...)
}

// QueryContext parses and executes a SELECT or FUSE BY statement,
// honoring ctx through every pipeline phase: schema matching,
// duplicate detection and their sharded inner loops check it
// cooperatively, so a cancelled or timed-out query returns promptly
// with ctx's error, leaks no goroutines, and leaves the DB fully
// usable — the next identical query recomputes (or hits the cache)
// and returns the byte-identical result. A query whose singleflight
// leader is cancelled does not poison concurrent identical queries:
// they re-elect a leader and continue.
//
// Options tune this one query: WithTrace/WithoutTrace and
// WithLineage control how much of the pipeline the Result retains,
// WithDetectConfig/WithMatchConfig override the DB-wide phase
// configuration, and WithTimeout layers a per-statement deadline over
// ctx. With zero options the call behaves exactly as it always has;
// note that a Result served warm from the fused cache tier is slim —
// its Pipeline is nil unless WithTrace was requested (Summary carries
// the pipeline's numbers either way).
func (db *DB) QueryContext(ctx context.Context, sql string, opts ...QueryOption) (*Result, error) {
	cfg := resolveOptions(opts)
	db.queries.Add(1)
	res, err := db.newExecutor(&cfg).QueryWith(ctx, sql, cfg.exec())
	if err != nil {
		db.queryErrors.Add(1)
		return nil, err
	}
	if res.Summary != nil {
		db.fuseQueries.Add(1)
	}
	return res, nil
}

// QueryRows parses and executes a statement like QueryContext but
// returns a streaming cursor instead of a materialized Result: plain
// SELECTs stream rows out of the scan as it advances (cancelling ctx
// stops it mid-scan), fusion statements stream the fused table in
// chunks once the pipeline has run — warm queries straight from the
// slim fused-cache entry. Draining the cursor yields exactly the rows
// of the equivalent QueryContext call, in the same order.
//
// The caller must Close the cursor (Rows.All does so automatically).
// Parse errors return synchronously; execution errors surface through
// Rows.Columns, Next and Err.
func (db *DB) QueryRows(ctx context.Context, sql string, opts ...QueryOption) (*Rows, error) {
	cfg := resolveOptions(opts)
	db.queries.Add(1)
	exec := cfg.exec()
	// A stream's outcome is only known when its producer finishes, so
	// the fusion/error counters hook the finish callback: Stats stays
	// honest whether a statement was materialized or streamed. A
	// deliberate early Close reports a nil error (not a failure).
	exec.OnFinish = func(summary *core.Summary, err error) {
		if err != nil {
			db.queryErrors.Add(1)
		}
		if summary != nil {
			db.fuseQueries.Add(1)
		}
	}
	rows, err := db.newExecutor(&cfg).StreamContext(ctx, sql, exec)
	if err != nil {
		db.queryErrors.Add(1)
		return nil, err
	}
	return rows, nil
}

// BatchResult is one statement's outcome within a QueryBatch call.
type BatchResult struct {
	// SQL is the statement this result belongs to, verbatim.
	SQL string
	// Result is the statement's result; nil when Err is set.
	Result *Result
	// Err is the statement's error: a parse/execution failure, this
	// statement's elapsed WithTimeout deadline, or the batch context's
	// cancellation. Each statement fails independently — a failed
	// statement never prevents the ones after it from running (only
	// cancelling the batch's ctx does).
	Err error
	// Elapsed is the statement's wall-clock execution time.
	Elapsed time.Duration
}

// QueryBatch executes several statements over one configuration
// snapshot, returning a result (or error) per statement, in statement
// order. Statements run concurrently, bounded by the unified
// parallelism knob (SetParallelism; 0 = GOMAXPROCS, 1 = strictly
// sequential, the historical behaviour). Concurrency is invisible in
// the results: each statement is independent, and statements sharing
// pipeline artifacts or source subtrees share one computation through
// the cache's singleflight instead of racing — a batch over
// overlapping sources does one match/detect/scan pass, not N.
// Options apply to every statement; WithTimeout becomes a
// *per-statement* deadline over the PR-4 context substrate — a slow
// statement is cancelled mid-pipeline without eating the budget of
// the statements after it. Cancelling ctx aborts the statements not
// yet started: they report ctx's error.
func (db *DB) QueryBatch(ctx context.Context, stmts []string, opts ...QueryOption) []BatchResult {
	cfg := resolveOptions(opts)
	ex := db.newExecutor(&cfg)
	out := make([]BatchResult, len(stmts))
	run := func(i int) {
		q := stmts[i]
		out[i].SQL = q
		if err := ctx.Err(); err != nil {
			out[i].Err = err
			db.queries.Add(1)
			db.queryErrors.Add(1)
			return
		}
		start := time.Now()
		res, err := ex.QueryWith(ctx, q, cfg.exec())
		out[i].Elapsed = time.Since(start)
		db.queries.Add(1)
		if err != nil {
			out[i].Err = err
			db.queryErrors.Add(1)
			return
		}
		out[i].Result = res
		if res.Summary != nil {
			db.fuseQueries.Add(1)
		}
	}
	db.mu.RLock()
	workers := parshard.Workers(db.parallelism)
	db.mu.RUnlock()
	if workers > len(stmts) {
		workers = len(stmts)
	}
	if workers <= 1 {
		for i := range stmts {
			run(i)
		}
		return out
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range stmts {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			// Containment boundary: a panicking statement becomes its
			// own BatchResult error, never a dead process (the
			// sequential path below panics on the caller's goroutine,
			// where the caller's own recovery applies).
			defer func() {
				if r := recover(); r != nil {
					out[i].Err = fault.NewInternal("hummer.batch", r)
					db.queryErrors.Add(1)
				}
			}()
			run(i)
		}(i)
	}
	wg.Wait()
	return out
}

// SetDetectConfig installs the default duplicate-detection
// configuration used by Query's fusion statements — the API and CLI
// knob for the candidate strategy (Window / Blocking / QGrams) and
// Parallelism. Fuse calls pass their own PipelineOptions.Detect
// instead. In-flight queries keep the configuration they started
// with.
func (db *DB) SetDetectConfig(cfg DetectionConfig) {
	db.mu.Lock()
	db.detect = cfg
	db.mu.Unlock()
}

// SetMatchConfig installs the default DUMAS schema-matching
// configuration used by Query's fusion statements — the API and CLI
// knob for the duplicate budget (MaxDuplicates), the candidate
// strategy (Window / QGrams) and Parallelism. Fuse calls pass their
// own PipelineOptions.Match instead. In-flight queries keep the
// configuration they started with.
func (db *DB) SetMatchConfig(cfg MatchConfig) {
	db.mu.Lock()
	db.match = cfg
	db.mu.Unlock()
}

// SetParallelism installs the unified parallelism knob: the number of
// concurrently executing statements in a QueryBatch, the probe-side
// worker count of plain-SQL hash joins, and the default Parallelism
// for the match and detect phases when their configs leave it 0
// (SetDetectConfig/SetMatchConfig and per-query overrides still win).
// 0 means GOMAXPROCS; 1 forces fully sequential execution. Results
// are byte-identical at every setting — parallelism only changes
// wall-clock time. In-flight queries keep the value they started
// with.
func (db *DB) SetParallelism(n int) {
	db.mu.Lock()
	db.parallelism = n
	db.mu.Unlock()
}

// DetectDuplicates runs the duplicate-detection phase alone over a
// relation — clusters, scored pairs and statistics without the full
// fusion pipeline.
func DetectDuplicates(rel *Relation, cfg DetectionConfig) (*Detection, error) {
	return dupdetect.Detect(rel, cfg)
}

// DetectDuplicatesContext is DetectDuplicates honoring ctx: a
// cancelled detection returns promptly with ctx's error, all worker
// goroutines joined and no partial result.
func DetectDuplicatesContext(ctx context.Context, rel *Relation, cfg DetectionConfig) (*Detection, error) {
	return dupdetect.DetectContext(ctx, rel, cfg)
}

// MatchSchemas runs DUMAS instance-based schema matching alone over
// two relations — attribute correspondences, the duplicate tuple pairs
// they rest on, and the averaged field-similarity matrix, without the
// full fusion pipeline.
func MatchSchemas(left, right *Relation, cfg MatchConfig) (*MatchResult, error) {
	return dumas.Match(left, right, cfg)
}

// MatchSchemasContext is MatchSchemas honoring ctx: a cancelled match
// returns promptly with ctx's error, all worker goroutines joined and
// no partial result.
func MatchSchemasContext(ctx context.Context, left, right *Relation, cfg MatchConfig) (*MatchResult, error) {
	return dumas.MatchContext(ctx, left, right, cfg)
}

// Fuse runs the three-phase pipeline programmatically over the
// registered aliases — the API equivalent of the demo's wizard mode.
func (db *DB) Fuse(aliases []string, opts PipelineOptions) (*PipelineResult, error) {
	return db.newPipeline().Run(aliases, opts)
}

// FuseContext is Fuse honoring ctx through every pipeline phase.
func (db *DB) FuseContext(ctx context.Context, aliases []string, opts PipelineOptions) (*PipelineResult, error) {
	return db.newPipeline().RunContext(ctx, aliases, opts)
}

// OnCorrespondences installs the wizard step-2 hook: inspect and
// adjust the attribute correspondences DUMAS proposes for each source
// before they are applied. Pass nil to restore automatic behaviour.
func (db *DB) OnCorrespondences(h func(sourceAlias string, proposed []Correspondence) []Correspondence) {
	db.mu.Lock()
	db.onCorrespondences = h
	db.mu.Unlock()
}

// OnAttributes installs the wizard step-3 hook: adjust the attributes
// duplicate detection compares.
func (db *DB) OnAttributes(h func(proposed []string) []string) {
	db.mu.Lock()
	db.onAttributes = h
	db.mu.Unlock()
}

// OnDuplicates installs the wizard step-4 hook: inspect the detected
// duplicate clustering and optionally return replacement object ids.
// The Detection may be a cached artifact shared across queries; treat
// it as read-only and adjust by returning ids.
func (db *DB) OnDuplicates(h func(det *Detection, merged *Relation) []int) {
	db.mu.Lock()
	db.onDuplicates = h
	db.mu.Unlock()
}

// --- Stats and cache control ------------------------------------------------

// SourceStatus describes one registered source in a Stats snapshot.
type SourceStatus struct {
	// Alias is the registered name.
	Alias string `json:"alias"`
	// Generation counts data versions: 1 after first registration,
	// bumped by Replace*/InvalidateSource.
	Generation uint64 `json:"generation"`
}

// Stats is a point-in-time snapshot of a DB: query counters, the
// registered sources with their generations, and the artifact-cache
// traffic. hummerd's /v1/stats endpoint serves this.
type Stats struct {
	// Queries counts Query calls; FuseQueries the subset that ran the
	// fusion pipeline; QueryErrors the calls that failed.
	Queries     uint64 `json:"queries"`
	FuseQueries uint64 `json:"fuse_queries"`
	QueryErrors uint64 `json:"query_errors"`
	// Sources lists the registered aliases with generations, sorted
	// by alias.
	Sources []SourceStatus `json:"sources"`
	// Cache reports artifact-cache entries and per-kind hit/miss/
	// singleflight-share/eviction counters. The zero value when the
	// cache is disabled.
	Cache CacheStats `json:"cache"`
	// CSEShared / CSEUnique count plain-SQL source subtrees resolved
	// through the planner's cross-statement CSE tier: Shared are
	// resolutions served from (or piggybacked on) another statement's
	// materialization, Unique are the ones that had to materialize.
	// Derived from the cache's cse kind; zero when the cache is
	// disabled.
	CSEShared uint64 `json:"cse_shared"`
	CSEUnique uint64 `json:"cse_unique"`
}

// Stats snapshots the DB's counters. It is cheap: no sources are
// loaded.
func (db *DB) Stats() Stats {
	st := Stats{
		Queries:     db.queries.Load(),
		FuseQueries: db.fuseQueries.Load(),
		QueryErrors: db.queryErrors.Load(),
	}
	for _, alias := range db.repo.Aliases() {
		st.Sources = append(st.Sources, SourceStatus{Alias: alias, Generation: db.repo.Generation(alias)})
	}
	if db.cache != nil {
		st.Cache = db.cache.Stats()
		if ks, ok := st.Cache.Kinds[qcache.KindCSE]; ok {
			st.CSEShared = ks.Hits + ks.Shared
			st.CSEUnique = ks.Misses
		}
	}
	return st
}

// PurgeCache drops every completed artifact from the cache and
// returns how many were dropped (0 when the cache is disabled).
// Purging is an operator convenience, not a correctness requirement:
// stale artifacts already stop being addressed when their inputs
// change, because keys are content fingerprints.
func (db *DB) PurgeCache() int {
	if db.cache == nil {
		return 0
	}
	return db.cache.Purge()
}

// NewTable starts a fluent builder for an in-memory relation:
//
//	t := hummer.NewTable("people", "Name", "Age").
//	    AddText("Alice", "30").
//	    Build()
func NewTable(name string, cols ...string) *TableBuilder {
	return relation.NewBuilder(name, cols...)
}

// TableBuilder builds relations row by row.
type TableBuilder = relation.Builder
