// Package hummer is the public API of the Humboldt Merger (HumMer), a
// reproduction of "Automatic Data Fusion with HumMer" (Bilke,
// Bleiholder, Böhm, Draba, Naumann, Weis — VLDB 2005).
//
// HumMer fuses heterogeneous, duplicate-ridden, conflicting data in
// three fully automatic steps driven by a single query:
//
//  1. instance-based schema matching (DUMAS) aligns the attributes of
//     differently-labelled tables,
//  2. duplicate detection finds multiple representations of the same
//     real-world object, and
//  3. data fusion merges each duplicate group into one consistent
//     tuple, resolving value conflicts with per-column resolution
//     functions.
//
// The entry point is a DB: register data sources under aliases, then
// issue Fuse By queries:
//
//	db := hummer.New()
//	db.RegisterCSV("EE_Student", "ee.csv")
//	db.RegisterCSV("CS_Students", "cs.csv")
//	res, err := db.Query(`
//	    SELECT Name, RESOLVE(Age, max)
//	    FUSE FROM EE_Student, CS_Students
//	    FUSE BY (Name)`)
package hummer

import (
	"hummer/internal/core"
	"hummer/internal/dumas"
	"hummer/internal/dupdetect"
	"hummer/internal/fusion"
	"hummer/internal/lineage"
	"hummer/internal/metadata"
	"hummer/internal/plan"
	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/value"
)

// Re-exported data-model types. These aliases let callers name the
// types the API returns without reaching into internal packages.
type (
	// Relation is an in-memory table: a schema plus rows of values.
	Relation = relation.Relation
	// Row is one tuple of a relation.
	Row = relation.Row
	// Value is a dynamically typed scalar (NULL, string, int, float,
	// bool, time).
	Value = value.Value
	// Schema is an ordered list of named, typed columns.
	Schema = schema.Schema
	// LineageSet names the sources and rows a fused value came from.
	LineageSet = lineage.Set
	// ResolutionSpec names a conflict-resolution function plus its
	// optional argument, e.g. {Name: "choose", Arg: "shopB"}.
	ResolutionSpec = fusion.Spec
	// ResolutionContext is the query context a custom resolution
	// function receives.
	ResolutionContext = fusion.Context
	// ResolutionFunc is a user-defined conflict-resolution function.
	ResolutionFunc = fusion.Func
	// PipelineResult exposes every intermediate of a fusion run
	// (sources, matches, merged table, detection, fused output).
	PipelineResult = core.Result
	// PipelineOptions configures a programmatic fusion run.
	PipelineOptions = core.Options
	// Correspondence is one matched attribute pair proposed by schema
	// matching.
	Correspondence = dumas.Correspondence
	// MatchResult is the full DUMAS schema-matching output:
	// correspondences, the duplicate tuple pairs they were derived
	// from, the averaged field-similarity matrix and discovery
	// statistics.
	MatchResult = dumas.Result
	// MatchConfig tunes DUMAS schema matching: the number of
	// duplicates used, similarity thresholds, candidate-generation
	// strategy (token index by default, Window for sorted-neighborhood,
	// QGrams for q-gram prefix blocking) and Parallelism (0 =
	// GOMAXPROCS; the result is byte-identical at every worker count).
	MatchConfig = dumas.Config
	// MatchStats reports the candidate counts of a matching run.
	MatchStats = dumas.Stats
	// Detection is the duplicate-detection output (clusters, scored
	// pairs, borderline cases, comparison statistics).
	Detection = dupdetect.Result
	// DetectionConfig tunes duplicate detection: threshold, attribute
	// selection, candidate-generation strategy (exhaustive, Window for
	// sorted-neighborhood, Blocking for prefix blocking) and
	// Parallelism (0 = GOMAXPROCS; the result is byte-identical at
	// every worker count).
	DetectionConfig = dupdetect.Config
	// DetectionStats reports the comparison counts of a detection run.
	DetectionStats = dupdetect.Stats
	// Values re-exported for building rows and custom resolution
	// functions.
	Kind = value.Kind
)

// Value constructors, re-exported for convenience.
var (
	// Null is the NULL value.
	Null = value.Null
	// NewString wraps a string.
	NewString = value.NewString
	// NewInt wraps an int64.
	NewInt = value.NewInt
	// NewFloat wraps a float64.
	NewFloat = value.NewFloat
	// NewBool wraps a bool.
	NewBool = value.NewBool
	// NewTime wraps a time.Time.
	NewTime = value.NewTime
	// ParseValue infers the most specific value from raw text.
	ParseValue = value.Parse
)

// Result is the outcome of one query: the result table, per-cell
// lineage for fusion queries, and the pipeline intermediates.
type Result = plan.QueryResult

// DB is a HumMer instance: a metadata repository of registered
// sources, a resolution-function registry and a query executor.
type DB struct {
	repo     *metadata.Repository
	registry *fusion.Registry
	pipeline *core.Pipeline
	executor *plan.Executor
}

// New creates an empty HumMer instance with the built-in resolution
// functions (Coalesce, First, Last, Vote, Group, Concat, AnnConcat,
// Shortest, Longest, Choose, MostRecent, min, max, sum, avg, count,
// median, stddev).
func New() *DB {
	repo := metadata.NewRepository()
	reg := fusion.NewRegistry()
	pipe := &core.Pipeline{Repo: repo, Registry: reg}
	return &DB{
		repo:     repo,
		registry: reg,
		pipeline: pipe,
		executor: &plan.Executor{Repo: repo, Registry: reg, Pipeline: pipe},
	}
}

// RegisterTable registers an in-memory relation under alias.
func (db *DB) RegisterTable(alias string, rel *Relation) error {
	return db.repo.RegisterRelation(alias, rel)
}

// RegisterCSV registers a CSV file (first row = header) under alias.
func (db *DB) RegisterCSV(alias, path string) error {
	return db.repo.RegisterCSV(alias, path)
}

// RegisterJSON registers a JSON file (array of flat objects) under
// alias.
func (db *DB) RegisterJSON(alias, path string) error {
	return db.repo.RegisterJSON(alias, path)
}

// RegisterXML registers an XML file under alias; recordTag names the
// repeated element that forms one tuple.
func (db *DB) RegisterXML(alias, path, recordTag string) error {
	return db.repo.RegisterXML(alias, path, recordTag)
}

// Sources lists the registered aliases, sorted.
func (db *DB) Sources() []string { return db.repo.Aliases() }

// Table loads (and caches) the relational form of a registered source.
func (db *DB) Table(alias string) (*Relation, error) { return db.repo.Get(alias) }

// RegisterResolution adds a custom conflict-resolution function; the
// name becomes usable in RESOLVE clauses (HumMer is extensible,
// paper §2.4).
func (db *DB) RegisterResolution(name string, f ResolutionFunc) {
	db.registry.Register(name, f)
}

// ResolutionFunctions lists the registered resolution-function names.
func (db *DB) ResolutionFunctions() []string { return db.registry.Names() }

// Query parses and executes a SELECT or FUSE BY statement.
func (db *DB) Query(sql string) (*Result, error) { return db.executor.Query(sql) }

// SetDetectConfig installs the default duplicate-detection
// configuration used by Query's fusion statements — the API and CLI
// knob for the candidate strategy (Window / Blocking) and Parallelism.
// Fuse calls pass their own PipelineOptions.Detect instead.
func (db *DB) SetDetectConfig(cfg DetectionConfig) { db.executor.Detect = cfg }

// SetMatchConfig installs the default DUMAS schema-matching
// configuration used by Query's fusion statements — the API and CLI
// knob for the duplicate budget (MaxDuplicates), the candidate
// strategy (Window / QGrams) and Parallelism. Fuse calls pass their
// own PipelineOptions.Match instead.
func (db *DB) SetMatchConfig(cfg MatchConfig) { db.executor.Match = cfg }

// DetectDuplicates runs the duplicate-detection phase alone over a
// relation — clusters, scored pairs and statistics without the full
// fusion pipeline.
func DetectDuplicates(rel *Relation, cfg DetectionConfig) (*Detection, error) {
	return dupdetect.Detect(rel, cfg)
}

// MatchSchemas runs DUMAS instance-based schema matching alone over
// two relations — attribute correspondences, the duplicate tuple pairs
// they rest on, and the averaged field-similarity matrix, without the
// full fusion pipeline.
func MatchSchemas(left, right *Relation, cfg MatchConfig) (*MatchResult, error) {
	return dumas.Match(left, right, cfg)
}

// Fuse runs the three-phase pipeline programmatically over the
// registered aliases — the API equivalent of the demo's wizard mode.
func (db *DB) Fuse(aliases []string, opts PipelineOptions) (*PipelineResult, error) {
	return db.pipeline.Run(aliases, opts)
}

// OnCorrespondences installs the wizard step-2 hook: inspect and
// adjust the attribute correspondences DUMAS proposes for each source
// before they are applied. Pass nil to restore automatic behaviour.
func (db *DB) OnCorrespondences(h func(sourceAlias string, proposed []Correspondence) []Correspondence) {
	db.pipeline.OnCorrespondences = h
}

// OnAttributes installs the wizard step-3 hook: adjust the attributes
// duplicate detection compares.
func (db *DB) OnAttributes(h func(proposed []string) []string) {
	db.pipeline.OnAttributes = h
}

// OnDuplicates installs the wizard step-4 hook: inspect the detected
// duplicate clustering and optionally return replacement object ids.
func (db *DB) OnDuplicates(h func(det *Detection, merged *Relation) []int) {
	if h == nil {
		db.pipeline.OnDuplicates = nil
		return
	}
	db.pipeline.OnDuplicates = h
}

// NewTable starts a fluent builder for an in-memory relation:
//
//	t := hummer.NewTable("people", "Name", "Age").
//	    AddText("Alice", "30").
//	    Build()
func NewTable(name string, cols ...string) *TableBuilder {
	return relation.NewBuilder(name, cols...)
}

// TableBuilder builds relations row by row.
type TableBuilder = relation.Builder
