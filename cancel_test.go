package hummer

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"hummer/internal/testutil"
)

// TestQueryCancelMidFlight is the cancellation acceptance test: a
// query cancelled while the pipeline is executing returns promptly
// with the context's error, joins every worker goroutine it started,
// and leaves the DB fully usable — the identical follow-up query on
// the same DB returns the byte-identical result.
func TestQueryCancelMidFlight(t *testing.T) {
	q := `SELECT Name, RESOLVE(Age, max)
		FUSE FROM EE_Student, CS_Students
		FUSE BY (Name)
		ORDER BY Name`

	db := studentDB(t)
	// The hook gives the test a deterministic "mid-flight" point: when
	// armed it signals readiness and blocks until the query's context
	// is cancelled; the next pipeline phase then observes the
	// cancellation. When unarmed it is a pass-through (hooks disable
	// the fused cache tier, so both reference queries execute the full
	// pipeline — exactly what byte-identity should compare).
	var block func() // nil = pass through
	db.OnCorrespondences(func(alias string, proposed []Correspondence) []Correspondence {
		if block != nil {
			block()
		}
		return proposed
	})

	ref, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Rel.String()

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	block = func() {
		close(started)
		<-ctx.Done()
	}
	go func() {
		<-started
		cancel()
	}()
	start := time.Now()
	_, err = db.QueryContext(ctx, q)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query returned %v, want context.Canceled", err)
	}
	// Test-enforced promptness: cooperative checks sit at phase and
	// chunk boundaries, so even on a loaded box the abort is fast.
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled query took %v to return", elapsed)
	}
	testutil.WaitForGoroutines(t, before+2)

	// The DB must be fully usable, and the repeat byte-identical.
	block = nil
	again, err := db.Query(q)
	if err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
	if got := again.Rel.String(); got != want {
		t.Fatalf("result after cancellation differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestQueryContextDeadline: an elapsed deadline aborts the pipeline
// with context.DeadlineExceeded.
func TestQueryContextDeadline(t *testing.T) {
	db := studentDB(t)
	db.OnCorrespondences(func(alias string, proposed []Correspondence) []Correspondence {
		time.Sleep(80 * time.Millisecond) // outlive the deadline below
		return proposed
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := db.QueryContext(ctx, `SELECT Name FUSE FROM EE_Student, CS_Students FUSE BY (Name)`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline query returned %v, want context.DeadlineExceeded", err)
	}
}

// TestQueryContextPreCancelled: a context cancelled before the call
// never starts the pipeline.
func TestQueryContextPreCancelled(t *testing.T) {
	db := studentDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, `SELECT Name FROM EE_Student`); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query returned %v, want context.Canceled", err)
	}
	// Counted as a query error, DB still serves.
	if _, err := db.Query(`SELECT Name FROM EE_Student`); err != nil {
		t.Fatalf("query after pre-cancelled call: %v", err)
	}
}

// TestCancelDoesNotPoisonCache: a cancelled query must not leave a
// poisoned singleflight entry behind — the next identical query
// recomputes and succeeds (the qcache re-election contract, observed
// end to end).
func TestCancelDoesNotPoisonCache(t *testing.T) {
	q := `SELECT Name, RESOLVE(Age, max) FUSE FROM EE_Student, CS_Students FUSE BY (Name) ORDER BY Name`
	db := studentDB(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("query after cancelled identical query: %v", err)
	}
	if res.Rel.Len() == 0 {
		t.Fatal("empty result after cancelled identical query")
	}
}
