// Quickstart: the paper's running example, §2.1. Two student tables
// with heterogeneous schemas are fused with a single Fuse By query —
// schema matching, duplicate detection and conflict resolution all
// happen automatically under the covers.
package main

import (
	"context"
	"fmt"
	"log"

	"hummer"
)

func main() {
	db := hummer.New()

	// Two autonomous databases: different column names, overlapping
	// students, conflicting ages.
	ee := hummer.NewTable("EE_Student", "Name", "Age", "City").
		AddText("Jonathan Smith", "21", "Berlin").
		AddText("Maria Garcia", "24", "Hamburg").
		AddText("Wei Chen", "21", "Munich").
		AddText("Aisha Khan", "23", "Cologne").
		Build()
	cs := hummer.NewTable("CS_Students", "FullName", "Semester", "Years", "Town").
		AddText("Jonathan Smith", "4", "22", "Berlin").
		AddText("Wei Chen", "2", "21", "Munich").
		AddText("Lena Fischer", "1", "20", "Stuttgart").
		Build()

	if err := db.RegisterTable("EE_Student", ee); err != nil {
		log.Fatal(err)
	}
	if err := db.RegisterTable("CS_Students", cs); err != nil {
		log.Fatal(err)
	}

	// The exact statement from the paper: students are identified by
	// name, and age conflicts resolve to the maximum (students only
	// get older). WithTrace opts in to the pipeline intermediates —
	// they are a per-query option now, not an always-on payload.
	res, err := db.Query(`
		SELECT Name, RESOLVE(Age, max)
		FUSE FROM EE_Student, CS_Students
		FUSE BY (Name)
		ORDER BY Name`, hummer.WithTrace())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fused result (one tuple per student):")
	fmt.Print(res.Rel)

	// The pipeline intermediates are available for inspection — the
	// API equivalent of the demo's wizard visualization.
	p := res.Pipeline
	fmt.Printf("\nschema matching aligned %d source(s) to the preferred schema\n", len(p.Matches))
	for i, m := range p.Matches {
		for _, c := range m.Correspondences {
			fmt.Printf("  source %d: %s ≈ %s (score %.2f)\n", i+2, c.LeftCol, c.RightCol, c.Score)
		}
	}
	if p.Detection != nil {
		fmt.Printf("duplicate detection: %d tuples → %d real-world objects\n",
			p.Merged.Len(), len(p.Detection.Clusters))
	}

	// The same query as a stream: rows arrive one at a time instead of
	// as one materialized table — the shape to use when results are
	// large. All() closes the cursor when the loop ends.
	rows, err := db.QueryRows(context.Background(), `
		SELECT Name, RESOLVE(Age, max)
		FUSE FROM EE_Student, CS_Students
		FUSE BY (Name)
		ORDER BY Name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nStreamed:")
	for row, err := range rows.All() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %s\n", row[0].Text(), row[1].Text())
	}
}
