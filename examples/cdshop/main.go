// CD-shop catalog integration (paper §1): a shopping agent collects
// data about identical CDs offered at different sites. The sites label
// their data fields differently (or the agent only sees scraped
// columns), list overlapping albums with typos, and disagree on
// prices. One Fuse By query integrates the catalogs, favoring the
// cheapest offer for the price and annotating where each price came
// from.
package main

import (
	"fmt"
	"log"

	"hummer"
)

func main() {
	db := hummer.New()

	// Three shops, three schemas, dirty overlapping catalogs.
	shopA := hummer.NewTable("shopA", "Artist", "Title", "Price", "Year").
		AddText("The Beatles", "Abbey Road", "18.99", "1969").
		AddText("Miles Davis", "Kind of Blue", "14.50", "1959").
		AddText("Nina Simone", "Pastel Blues", "12.00", "1965").
		AddText("Glenn Gould", "Goldberg Variations", "21.00", "1981").
		Build()
	shopB := hummer.NewTable("shopB", "Performer", "Album", "Cost").
		AddText("The Beatles", "Abbey Road", "12.49").
		AddText("Miles Davis", "Kind of Blue", "13.99").
		AddText("Johnny Cash", "At Folsom Prison", "11.00").
		Build()
	shopC := hummer.NewTable("shopC", "Band", "Record", "Amount", "Released").
		AddText("The Beatles", "Abbey Roda", "15.75", "1969"). // note the typo
		AddText("Nina Simone", "Pastel Blues", "10.25", "1965").
		AddText("Ella Fitzgerald", "Lullabies of Birdland", "9.99", "1954").
		Build()

	for alias, rel := range map[string]*hummer.Relation{
		"shopA": shopA, "shopB": shopB, "shopC": shopC,
	} {
		if err := db.RegisterTable(alias, rel); err != nil {
			log.Fatal(err)
		}
	}

	// Integrate the catalogs: identify CDs by title (typo-tolerant,
	// thanks to duplicate detection), take the minimum price, and keep
	// the full price list annotated per shop.
	res, err := db.Query(`
		SELECT Title, Artist,
		       RESOLVE(Price, min) AS BestPrice,
		       RESOLVE(Price, annconcat) AS AllPrices,
		       RESOLVE(Year, vote)
		FUSE FROM shopA, shopB, shopC
		FUSE BY (Title)
		ORDER BY BestPrice`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Integrated CD catalog (cheapest offer first):")
	fmt.Print(res.Rel)

	// Lineage: which shop supplied each fused value ("color coding"
	// in the demo GUI).
	fmt.Println("\nBest-price lineage per album:")
	bp := res.Rel.Schema().MustLookup("BestPrice")
	for i := 0; i < res.Rel.Len(); i++ {
		fmt.Printf("  %-25s %s ← %s\n",
			res.Rel.Value(i, "Title"), res.Rel.Value(i, "BestPrice"), res.Lineage[i][bp])
	}
}
