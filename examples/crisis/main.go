// Crisis-data fusion (paper §1): after the 2004 tsunami, data about
// missing persons was collected multiple times at different levels of
// detail and accuracy. Fusing the collection points' records gives
// relief workers one consistent view per person: the most recent
// status wins, locations vote, and everything is traceable to its
// source.
package main

import (
	"fmt"
	"log"

	"hummer"
)

func main() {
	db := hummer.New()

	// Field registrations: sparse, names only.
	field := hummer.NewTable("field_reports", "Name", "Status", "Seen", "Camp").
		AddText("Anan Chaiyasit", "missing", "2005-01-02", "").
		AddText("Somchai Woranut", "missing", "2005-01-02", "").
		AddText("Fatima Hassan", "safe", "2005-01-03", "Camp North").
		AddText("Kofi Mensah", "missing", "2005-01-02", "").
		Build()
	// Hospital admissions: different labels, partly different detail.
	// (Status keeps its label; instance-based matching aligns Patient
	// and Admitted from the shared persons.)
	hospital := hummer.NewTable("hospital", "Patient", "Status", "Admitted", "Ward").
		AddText("Anan Chaiyasit", "hospital", "2005-01-05", "Ward 3").
		AddText("Somchai Woranut", "hospital", "2005-01-04", "Ward 1").
		AddText("Priya Patel", "hospital", "2005-01-06", "Ward 2").
		Build()
	// Relief-agency roster, with a typo in a name.
	agency := hummer.NewTable("agency", "Person", "State", "Updated", "Location").
		AddText("Anan Chaiyasif", "safe", "2005-01-09", "School Shelter"). // typo'd duplicate
		AddText("Fatima Hassan", "safe", "2005-01-07", "Camp North").
		AddText("Ingrid Larsen", "evacuated", "2005-01-05", "Airport").
		Build()

	for alias, rel := range map[string]*hummer.Relation{
		"field_reports": field, "hospital": hospital, "agency": agency,
	} {
		if err := db.RegisterTable(alias, rel); err != nil {
			log.Fatal(err)
		}
	}

	// One record per person: the status with the latest report date
	// wins (MostRecent over the Seen attribute after alignment).
	res, err := db.Query(`
		SELECT Name,
		       RESOLVE(Status, mostrecent(Seen)) AS Status,
		       RESOLVE(Seen, max) AS LastReport,
		       RESOLVE(Camp, coalesce) AS LastLocation
		FUSE FROM field_reports, hospital, agency
		FUSE BY (Name)
		ORDER BY Name`, hummer.WithTrace())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Consolidated person registry:")
	fmt.Print(res.Rel)

	fmt.Println("\nEvery fused record is traceable:")
	st := res.Rel.Schema().MustLookup("Status")
	for i := 0; i < res.Rel.Len(); i++ {
		fmt.Printf("  %-18s status %q from [%s]\n",
			res.Rel.Value(i, "Name"), res.Rel.Value(i, "Status").Text(), res.Lineage[i][st])
	}

	// How much did fusion consolidate?
	p := res.Pipeline
	fmt.Printf("\n%d raw records from %d collection points → %d persons\n",
		p.Merged.Len(), len(p.Sources), res.Rel.Len())
}
