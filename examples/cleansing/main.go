// Online data-cleansing service (paper §1): a user submits one dirty
// data set — duplicates, typos, missing values — and receives a clean,
// consistent data set in response, without writing any ETL.
//
// This example also shows the wizard hooks: the user inspects the
// proposed duplicate clustering before fusion (step 4 of Fig. 2).
package main

import (
	"fmt"
	"log"

	"hummer"
)

func main() {
	db := hummer.New()

	upload := hummer.NewTable("upload", "Name", "Age", "City", "Email").
		AddText("Jonathan Smith", "32", "Berlin", "jon@example.com").
		AddText("Jonathon Smith", "32", "Berlin", "jon@example.com"). // typo duplicate
		AddText("Maria Garcia", "27", "Hamburg", "maria@example.org").
		AddText("Maria Garcia", "27", "", "maria@example.org"). // missing city
		AddText("Maria Garcia", "", "Hamburg", "").             // sparse duplicate
		AddText("Wei Chen", "45", "Munich", "wei@example.net").
		AddText("Aisha Khan", "19", "Cologne", "aisha@example.com").
		Build()
	if err := db.RegisterTable("upload", upload); err != nil {
		log.Fatal(err)
	}

	// Wizard step 4: review the duplicate clustering before fusing.
	db.OnDuplicates(func(det *hummer.Detection, merged *hummer.Relation) []int {
		fmt.Printf("proposed clustering: %d tuples → %d objects\n", merged.Len(), len(det.Clusters))
		for _, pair := range det.Duplicates {
			fmt.Printf("  sure duplicate (%.2f): %q ↔ %q\n", pair.Sim,
				merged.Value(pair.A, "Name").Text(), merged.Value(pair.B, "Name").Text())
		}
		for _, pair := range det.Borderline {
			fmt.Printf("  unsure case    (%.2f): %q ↔ %q\n", pair.Sim,
				merged.Value(pair.A, "Name").Text(), merged.Value(pair.B, "Name").Text())
		}
		return nil // accept the proposal unchanged
	})

	res, err := db.Query(`SELECT * FUSE FROM upload FUSE BY (Name) ORDER BY Name`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nCleansed data set:")
	fmt.Print(res.Rel)
	fmt.Printf("\n%d dirty rows in, %d clean rows out\n", upload.Len(), res.Rel.Len())
}
