// Benchmarks regenerating the performance-shaped experiments of
// DESIGN.md §3. One benchmark per experiment table/figure:
//
//	E1  BenchmarkParseFuseBy        — Fuse By grammar (Fig. 1)
//	E2  BenchmarkPipelineEndToEnd   — full pipeline (Fig. 2)
//	E3  BenchmarkDUMASMatch         — schema matching
//	E5  BenchmarkDupDetect          — duplicate detection
//	E6  BenchmarkDupDetectNoFilter  — ablation D4 (filter off)
//	E7  BenchmarkResolution*        — conflict-resolution functions
//	E8  BenchmarkFuseByScaling      — fusion vs. plain outer union
//
// Run: go test -bench=. -benchmem
package hummer

import (
	"fmt"
	"reflect"
	"testing"

	"hummer/internal/core"
	"hummer/internal/datagen"
	"hummer/internal/dumas"
	"hummer/internal/dupdetect"
	"hummer/internal/engine"
	"hummer/internal/fusion"
	"hummer/internal/metadata"
	"hummer/internal/relation"
	"hummer/internal/schema"
	"hummer/internal/sql"
	"hummer/internal/value"
)

const benchSeed = 2005

var benchRenames = map[string]string{
	"Name": "FullName", "Age": "Years", "City": "Town",
	"Email": "Mail", "Phone": "Telephone",
}

// benchSources builds two overlapping dirty person sources with n/2
// entities each.
func benchSources(n int) (*relation.Relation, *relation.Relation) {
	ents := datagen.Persons.Generate(benchSeed, n/2)
	left := datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
		Alias: "s1", TypoRate: 0.1, NullRate: 0.05, Seed: benchSeed + 1,
	})
	right := datagen.ObserveShuffled(datagen.Persons, ents, datagen.SourceSpec{
		Alias: "s2", Renames: benchRenames, TypoRate: 0.1, NullRate: 0.05, Seed: benchSeed + 2,
	})
	return left.Rel, right.Rel
}

func benchRepo(b *testing.B, n int) *metadata.Repository {
	b.Helper()
	l, r := benchSources(n)
	repo := metadata.NewRepository()
	if err := repo.RegisterRelation("s1", l); err != nil {
		b.Fatal(err)
	}
	if err := repo.RegisterRelation("s2", r); err != nil {
		b.Fatal(err)
	}
	return repo
}

// BenchmarkParseFuseBy measures parsing of the paper's Fig. 1 example
// statement (experiment E1).
func BenchmarkParseFuseBy(b *testing.B) {
	q := `SELECT Name, RESOLVE(Age, max), RESOLVE(Price, choose('shopB')) AS p
	      FUSE FROM EE_Student, CS_Students
	      WHERE Age > 18 AND City LIKE 'Ber%'
	      FUSE BY (Name, City)
	      HAVING Age < 99 ORDER BY Name DESC LIMIT 10`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sql.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineEndToEnd measures the full Fig. 2 dataflow:
// matching, transformation, duplicate detection and fusion
// (experiment E2).
func BenchmarkPipelineEndToEnd(b *testing.B) {
	for _, n := range []int{100, 400} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			repo := benchRepo(b, n)
			p := &core.Pipeline{Repo: repo}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Run([]string{"s1", "s2"}, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDUMASMatch measures duplicate-based schema matching
// (experiment E3).
func BenchmarkDUMASMatch(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			l, r := benchSources(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dumas.Match(l, r, dumas.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchDirty builds the duplicate-detection workload.
func benchDirty(n int) *relation.Relation {
	ents := datagen.Persons.Generate(benchSeed, n/3)
	obs := datagen.DirtyTable(datagen.Persons, ents, 3, datagen.SourceSpec{
		Alias: "dirty", TypoRate: 0.15, NullRate: 0.1, Seed: benchSeed + 3,
	})
	return obs.Rel
}

// BenchmarkDetect measures the sharded parallel detector at scale:
// exhaustive pairing over ≥5k rows (1.2k in -short mode), at worker
// counts 1, 2 and 4. This is the perf-acceptance benchmark for the
// parallel work: on a ≥4-core machine Parallelism=4 must be ≥2×
// faster than Parallelism=1, and every run's Result must be
// byte-identical to the sequential one (asserted here).
func BenchmarkDetect(b *testing.B) {
	n := 5000
	if testing.Short() {
		n = 1200
	}
	rel := benchDirty(n)
	baseline, err := dupdetect.Detect(rel, dupdetect.Config{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("rows=%d/parallel=%d", n, p), func(b *testing.B) {
			// Identity is asserted once, outside the timed loop: the
			// reflection walk must not skew the measured speedup.
			res, err := dupdetect.Detect(rel, dupdetect.Config{Parallelism: p})
			if err != nil {
				b.Fatal(err)
			}
			if !reflect.DeepEqual(baseline, res) {
				b.Fatalf("parallel=%d produced a different Result than sequential", p)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dupdetect.Detect(rel, dupdetect.Config{Parallelism: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDupDetect measures duplicate detection with the upper-bound
// filter on (experiment E5).
func BenchmarkDupDetect(b *testing.B) {
	for _, n := range []int{100, 300, 900} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			rel := benchDirty(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dupdetect.Detect(rel, dupdetect.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDupDetectNoFilter is ablation D4: the same detection with
// the filter disabled (experiment E6 measures the gap).
func BenchmarkDupDetectNoFilter(b *testing.B) {
	for _, n := range []int{100, 300} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			rel := benchDirty(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dupdetect.Detect(rel, dupdetect.Config{DisableFilter: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkResolutionFunctions measures the built-in conflict-
// resolution functions over a ten-way conflict (experiment E7).
func BenchmarkResolutionFunctions(b *testing.B) {
	reg := fusion.NewRegistry()
	s := schema.FromNames("c")
	vals := make([]value.Value, 10)
	rows := make([]relation.Row, 10)
	sources := make([]string, 10)
	for i := range vals {
		vals[i] = value.NewString(fmt.Sprintf("value-%d", i%4))
		rows[i] = relation.Row{vals[i]}
		sources[i] = fmt.Sprintf("s%d", i)
	}
	ctx := &fusion.Context{Column: "c", Relation: "t", Schema: s,
		Rows: rows, Values: vals, Sources: sources}
	for _, name := range []string{"coalesce", "vote", "concat", "longest", "min", "median"} {
		f, ok := reg.Lookup(name)
		if !ok {
			b.Fatalf("no function %q", name)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f(ctx, ""); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFuseByScaling compares the full fusion pipeline against the
// outer-union-only baseline at growing input sizes (experiment E8).
func BenchmarkFuseByScaling(b *testing.B) {
	for _, n := range []int{200, 800} {
		repo := benchRepo(b, n)
		p := &core.Pipeline{Repo: repo}
		b.Run(fmt.Sprintf("pipeline/rows=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Run([]string{"s1", "s2"}, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("outer-union-baseline/rows=%d", n), func(b *testing.B) {
			l, err := repo.Get("s1")
			if err != nil {
				b.Fatal(err)
			}
			r, err := repo.Get("s2")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u, err := engine.NewOuterUnion(engine.NewScan(l), engine.NewScan(r))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := engine.Materialize("u", u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryEndToEnd measures the public API round trip: parse,
// plan, pipeline, post-process.
func BenchmarkQueryEndToEnd(b *testing.B) {
	db := New()
	l, r := benchSources(200)
	if err := db.RegisterTable("s1", l); err != nil {
		b.Fatal(err)
	}
	if err := db.RegisterTable("s2", r); err != nil {
		b.Fatal(err)
	}
	q := `SELECT Name, RESOLVE(Age, max) FUSE FROM s1, s2 FUSE BY (Name) ORDER BY Name`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
