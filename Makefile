# HumMer build / verify entry points.
#
#   make check   — everything CI needs: formatting, vet, the hummer
#                  contract linter, build, tests, the race detector on
#                  the parallel and serving packages, the chaos
#                  fault-storm, the coverage floor, and the
#                  perf-acceptance benchmarks in short mode.
#   make lint    — the repo's own static-analysis suite
#                  (cmd/hummer-lint): panic containment on every
#                  goroutine, determinism bans in result-producing
#                  packages, ctx discipline, sync/atomic mixing, and
#                  error-wrapping hygiene.
#   make chaos   — the fault-injection chaos suite under -race: a
#                  server hammered by concurrent mixed queries while a
#                  fixed-seed fault schedule fires panics, errors and
#                  delays at every layer.
#   make serve   — launch hummerd on the quickstart example sources.
#   make bench   — the full benchmark suite (longer).
#   make loadtest — fixed-seed closed-loop loadgen smoke + burst
#                  admission tests against an in-process hummerd.
#   make profile — start hummerd with -debug-addr, drive it with the
#                  loadgen, and capture a 10s CPU profile to
#                  profiles/cpu.pprof.
#   make fmt     — rewrite files with gofmt.

GO ?= go

# Packages with sharded worker pools or concurrent query serving:
# always exercised under -race. The root package carries the
# concurrent-DB.Query byte-identity test; plan and core carry the
# ctx-threaded pipeline (cancellation joins worker goroutines, the
# fused-result tier shares results across queries), so ctx-misuse
# regressions surface here; engine carries the batched parallel
# hash-join probe.
RACE_PKGS = . ./internal/parshard ./internal/dupdetect ./internal/dumas \
	./internal/qcache ./internal/server ./internal/plan ./internal/core \
	./internal/engine

# Packages held to the coverage floor (matching + detection core).
COVER_PKGS = ./internal/dumas ./internal/dupdetect ./internal/assign ./internal/strsim
COVER_FLOOR = 70

.PHONY: check fmtcheck fmt vet lint build test race race-stream chaos cover bench bench-short bench-join serve loadtest obs-bench profile

check: fmtcheck vet lint build test race race-stream chaos cover bench-short obs-bench loadtest

fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# The repo's contracts as code: five analyzers (containment,
# determinism, ctx, atomicmix, errwrap) over the whole module. Exit 1
# on findings; suppression needs //lint:ignore hummer/<rule> <reason>.
lint:
	$(GO) run ./cmd/hummer-lint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel and serving packages must be clean under the race
# detector: the determinism guarantee is worthless if workers race,
# and hummerd serves queries concurrently.
race:
	$(GO) test -race $(RACE_PKGS)

# The streaming/batch API surface (Rows producer goroutines, NDJSON
# streaming, per-statement deadlines) exercised under the race
# detector with verbose-enough selection that a hang is attributable.
# Redundant with `race` on coverage, but a fast, targeted signal when
# iterating on the streaming path.
race-stream:
	$(GO) test -race -run 'Stream|Rows|Batch' . ./internal/plan ./internal/server

# Fault containment under fire: the chaos storm (fixed fault seed
# baked into the test) plus every injection/containment test, all
# under the race detector. Proves panics anywhere become typed
# errors, the cache is never poisoned, goroutines settle, and
# post-chaos results stay byte-identical.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Panic|Fault|Inject' \
		./internal/faultinject ./internal/fault ./internal/parshard \
		./internal/qcache ./internal/plan ./internal/server

# Launch the query service on the quickstart example sources; stop it
# with Ctrl-C (hummerd shuts down gracefully). See README.md for a
# curl-able tour of the API.
serve:
	$(GO) run ./cmd/hummerd -addr :8080 \
		-csv EE_Student=examples/serve/ee_students.csv \
		-csv CS_Students=examples/serve/cs_students.csv

# Coverage floor: each core matching/detection package must keep at
# least $(COVER_FLOOR)% statement coverage.
cover:
	@fail=0; \
	for pkg in $(COVER_PKGS); do \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "$$pkg: no coverage reported"; fail=1; continue; fi; \
		ok=$$(awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN{print (p >= f) ? 1 : 0}'); \
		if [ "$$ok" = "1" ]; then \
			echo "coverage $$pkg: $$pct% (floor $(COVER_FLOOR)%)"; \
		else \
			echo "coverage $$pkg: $$pct% BELOW FLOOR $(COVER_FLOOR)%"; fail=1; \
		fi; \
	done; \
	exit $$fail

# The perf-acceptance benchmarks, one iteration each on small inputs:
# proves the parallel path stays byte-identical and the hot path stays
# allocation-lean without taking minutes.
bench-short:
	$(GO) test -short -run '^$$' -bench 'BenchmarkDetect$$|BenchmarkPairComparison' -benchtime 1x ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Parallel-join perf gate: fails if the batched parallel probe
# regresses more than 10% (plus a small scheduler-noise slack) against
# the sequential streaming probe on the same workload. Timing-based,
# so it runs on demand rather than in `check`.
bench-join:
	HUMMER_BENCH_JOIN=1 $(GO) test -count=1 -run TestParallelJoinRegression -v ./internal/engine

# Tracing-overhead gate: the no-op span path must stay at zero
# allocations (the test asserts it) and the benchmark keeps the number
# visible in CI logs. A regression here taxes every untraced query.
obs-bench:
	$(GO) test -run 'TestNoopSpanZeroAllocs' -bench 'BenchmarkNoopSpan' -benchtime 1000x ./internal/obs

# CPU-profile a loaded server: build both binaries, start hummerd on
# the example sources with the pprof listener up, drive it with the
# loadgen mix in the background, and capture a 10-second CPU profile.
# Inspect with: go tool pprof profiles/cpu.pprof
profile:
	@mkdir -p profiles
	$(GO) build -o profiles/hummerd ./cmd/hummerd
	$(GO) build -o profiles/hummer-loadgen ./cmd/hummer-loadgen
	@./profiles/hummerd -addr 127.0.0.1:18080 -debug-addr 127.0.0.1:18081 \
		-slow-query 250ms \
		-csv EE_Student=examples/serve/ee_students.csv \
		-csv CS_Students=examples/serve/cs_students.csv & \
	srv=$$!; \
	trap 'kill $$srv 2>/dev/null' EXIT; \
	sleep 1; \
	./profiles/hummer-loadgen -url http://127.0.0.1:18080 -setup \
		-mode open -rate 30 -duration 12s & \
	gen=$$!; \
	curl -fsS -o profiles/cpu.pprof \
		'http://127.0.0.1:18081/debug/pprof/profile?seconds=10' \
		|| { echo "profile capture failed (is something else on 18080/18081?)"; kill $$gen 2>/dev/null; exit 1; }; \
	wait $$gen; \
	echo "wrote profiles/cpu.pprof"

# Production-traffic smoke: the loadgen harness drives its fixed-seed
# closed-loop mix (and a deliberate overload burst) at an in-process
# hummerd — non-zero throughput, per-class percentiles, Retry-After on
# every overload response, and the /metrics histograms must all hold.
loadtest:
	$(GO) test -count=1 -run 'TestLoadgenSmoke|TestBurstAdmission' ./internal/loadgen
