# HumMer build / verify entry points.
#
#   make check   — everything CI needs: formatting, vet, build, tests,
#                  and the perf-acceptance benchmarks in short mode.
#   make bench   — the full benchmark suite (longer).
#   make fmt     — rewrite files with gofmt.

GO ?= go

.PHONY: check fmtcheck fmt vet build test bench bench-short

check: fmtcheck vet build test bench-short

fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The perf-acceptance benchmarks, one iteration each on small inputs:
# proves the parallel path stays byte-identical and the hot path stays
# allocation-lean without taking minutes.
bench-short:
	$(GO) test -short -run '^$$' -bench 'BenchmarkDetect$$|BenchmarkPairComparison' -benchtime 1x ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
