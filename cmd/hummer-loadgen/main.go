// Command hummer-loadgen drives a production-shaped traffic mix
// against a live hummerd and reports per-class latency SLO numbers:
// p50/p95/p99 plus time-to-first-row for the streaming classes,
// status and overload counts (429/499/503/504 with their Retry-After
// hints), and throughput.
//
// The request schedule is fully determined by -seed: two runs with
// the same flags issue the identical sequence of requests (the
// schedule fingerprint printed with the results certifies it), so the
// harness produces comparable measurements across code versions.
//
// Usage:
//
//	hummer-loadgen -url http://127.0.0.1:8080 -setup       # register lg_* fixtures, then run
//	hummer-loadgen -requests 500 -concurrency 16           # closed loop
//	hummer-loadgen -mode open -rate 80 -duration 10s       # open loop, Poisson arrivals
//	hummer-loadgen -mode open -ramp 20x5s,100x10s          # ramp profile
//	hummer-loadgen -mix warm_fuse:8,select_stream:2        # reweight the class mix
//	hummer-loadgen -print-schedule                         # dump the schedule, no traffic
//	hummer-loadgen -json                                   # merge E16 into BENCH_<date>.json
//
// The workload classes are the default loadgen mix (warm/cold fusion,
// materialized/streamed scans, streamed fusion, batches) over the
// lg_s1/lg_s2/lg_big fixtures; -setup registers those on the target
// (idempotent, replace semantics).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hummer/internal/experiments"
	"hummer/internal/loadgen"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "base URL of the target hummerd")
	seed := flag.Int64("seed", 2005, "schedule seed (same seed => identical request schedule)")
	mode := flag.String("mode", "closed", "arrival discipline: closed (fixed workers) or open (scheduled arrivals)")
	requests := flag.Int("requests", 200, "closed loop: total requests")
	concurrency := flag.Int("concurrency", 8, "closed loop: worker count")
	arrival := flag.String("arrival", "poisson", "open loop: interarrival process (poisson or constant)")
	rate := flag.Float64("rate", 50, "open loop: offered load in requests/second (single phase)")
	duration := flag.Duration("duration", 10*time.Second, "open loop: single-phase duration")
	ramp := flag.String("ramp", "", "open loop: multi-phase profile RATExDUR[,RATExDUR...] (e.g. 20x5s,100x10s); overrides -rate/-duration")
	mix := flag.String("mix", "", "class mix NAME:WEIGHT[,NAME:WEIGHT...] over the default classes; omitted classes keep weight 0")
	setup := flag.Bool("setup", false, "register the lg_s1/lg_s2/lg_big fixtures on the target before running")
	entities := flag.Int("entities", 60, "fixture size for -setup (person entities; lg_big holds 2x rows)")
	printSchedule := flag.Bool("print-schedule", false, "print the seeded schedule and exit without sending traffic")
	jsonOut := flag.Bool("json", false, "merge the run as experiment E16 into the BENCH_<date>.json artifact")
	outPath := flag.String("out", "", "artifact path for -json (default BENCH_<date>.json; merges with an existing file)")
	flag.Parse()

	if *outPath != "" && !*jsonOut {
		fatal("-out requires -json")
	}

	cfg := loadgen.Config{
		BaseURL:     strings.TrimRight(*url, "/"),
		Seed:        *seed,
		Classes:     loadgen.DefaultClasses(),
		Concurrency: *concurrency,
		Requests:    *requests,
		Arrival:     loadgen.Arrival(*arrival),
	}
	switch *mode {
	case "closed":
		cfg.Mode = loadgen.ModeClosed
	case "open":
		cfg.Mode = loadgen.ModeOpen
		phases, err := parseRamp(*ramp, *rate, *duration)
		if err != nil {
			fatal("%v", err)
		}
		cfg.Phases = phases
	default:
		fatal("unknown -mode %q (want closed or open)", *mode)
	}
	if *mix != "" {
		classes, err := applyMix(cfg.Classes, *mix)
		if err != nil {
			fatal("%v", err)
		}
		cfg.Classes = classes
	}

	schedule, err := loadgen.Schedule(cfg)
	if err != nil {
		fatal("%v", err)
	}
	if *printSchedule {
		fmt.Printf("# seed %d, %d requests, fingerprint %s\n",
			*seed, len(schedule), loadgen.Fingerprint(schedule))
		for _, r := range schedule {
			fmt.Printf("%6d  %-14s  +%s\n", r.Index, cfg.Classes[r.Class].Name, r.At)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &http.Client{}
	if *setup {
		if err := loadgen.Setup(ctx, client, cfg.BaseURL, *seed, *entities); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "hummer-loadgen: registered lg_s1/lg_s2/lg_big (%d entities) on %s\n",
			*entities, cfg.BaseURL)
	}
	cfg.Client = client

	t0 := time.Now()
	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fatal("%v", err)
	}
	rep := experiments.E16Report(res, cfg.BaseURL)
	fmt.Println(rep)

	if *jsonOut {
		art := &experiments.Artifact{
			Date:         time.Now().Format("2006-01-02"),
			Seed:         *seed,
			GoMaxProcs:   runtime.GOMAXPROCS(0),
			GoVersion:    runtime.Version(),
			TotalSeconds: time.Since(t0).Seconds(),
			Experiments:  []experiments.ArtifactEntry{experiments.EntryFor(rep, res.ElapsedSeconds)},
		}
		path := *outPath
		if path == "" {
			path = "BENCH_" + art.Date + ".json"
		}
		n, err := experiments.WriteMerged(path, art)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "hummer-loadgen: merged E16 into %s (%d experiments)\n", path, n)
	}
}

// parseRamp builds the open-loop phase list: either the multi-phase
// -ramp spec ("20x5s,100x10s") or the single -rate/-duration phase.
func parseRamp(spec string, rate float64, duration time.Duration) ([]loadgen.Phase, error) {
	if spec == "" {
		return []loadgen.Phase{{Rate: rate, Duration: duration}}, nil
	}
	var phases []loadgen.Phase
	for _, part := range strings.Split(spec, ",") {
		r, d, ok := strings.Cut(strings.TrimSpace(part), "x")
		if !ok {
			return nil, fmt.Errorf("bad -ramp phase %q (want RATExDURATION, e.g. 50x10s)", part)
		}
		rf, err := strconv.ParseFloat(r, 64)
		if err != nil || rf <= 0 {
			return nil, fmt.Errorf("bad -ramp rate in %q", part)
		}
		dd, err := time.ParseDuration(d)
		if err != nil || dd <= 0 {
			return nil, fmt.Errorf("bad -ramp duration in %q", part)
		}
		phases = append(phases, loadgen.Phase{Rate: rf, Duration: dd})
	}
	return phases, nil
}

// applyMix reweights the default classes from a NAME:WEIGHT spec.
// Classes the spec does not mention get weight 0 (dropped), so the
// spec IS the mix.
func applyMix(classes []loadgen.Class, spec string) ([]loadgen.Class, error) {
	known := map[string]int{}
	out := make([]loadgen.Class, len(classes))
	for i, c := range classes {
		c.Weight = 0
		out[i] = c
		known[c.Name] = i
	}
	for _, part := range strings.Split(spec, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want NAME:WEIGHT)", part)
		}
		i, found := known[name]
		if !found {
			names := make([]string, 0, len(classes))
			for _, c := range classes {
				names = append(names, c.Name)
			}
			return nil, fmt.Errorf("unknown class %q in -mix (known: %s)", name, strings.Join(names, ", "))
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -mix weight in %q", part)
		}
		out[i].Weight = n
	}
	return out, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hummer-loadgen: "+format+"\n", args...)
	os.Exit(1)
}
