// Command hummer-lint runs HumMer's contracts-as-code analyzer suite
// (internal/lint) over the module: panic containment at every
// goroutine boundary, the determinism contract in the fusion packages,
// end-to-end ctx threading, sync/atomic access consistency, and error
// wrapping across package boundaries.
//
// Usage:
//
//	hummer-lint [-json] [-dir .] [packages...]
//	hummer-lint -rules
//
// Findings print one per line as file:line: [hummer/rule] message, or
// as a JSON array with -json. A finding is suppressed only by a
// reasoned directive on the same or preceding line:
//
//	//lint:ignore hummer/<rule> <reason>
//
// Exit codes are CI-friendly: 0 clean, 1 findings, 2 load or usage
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"hummer/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hummer-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	rules := fs.Bool("rules", false, "list the rules with their contract docs and exit")
	dir := fs.String("dir", ".", "directory to resolve package patterns from")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *rules {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "hummer/%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader(*dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "hummer-lint: %v\n", err)
		return 2
	}
	findings := lint.Run(loader.Fset(), pkgs, lint.DefaultConfig())
	if cwd, err := os.Getwd(); err == nil {
		lint.RelPaths(findings, cwd)
	}

	if *jsonOut {
		type jsonFinding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Rule: "hummer/" + f.Rule, Message: f.Msg,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "hummer-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
