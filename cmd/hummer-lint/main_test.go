package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRulesListing(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-rules"}, &out, &errOut); code != 0 {
		t.Fatalf("run -rules = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	for _, rule := range []string{"hummer/containment", "hummer/determinism", "hummer/ctx", "hummer/atomicmix", "hummer/errwrap"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-rules output missing %s:\n%s", rule, out.String())
		}
	}
}

func TestFindingsExitOne(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", "../..", "./internal/lint/testdata/src/ctx"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run over ctx fixture = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[hummer/ctx]") {
		t.Errorf("findings output missing [hummer/ctx]:\n%s", out.String())
	}
}

func TestCleanExitZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", "../..", "./internal/fault"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run over internal/fault = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

func TestLoadErrorExitTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-dir", "../..", "./internal/does-not-exist"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("run over missing package = %d, want 2", code)
	}
	if errOut.Len() == 0 {
		t.Error("load error produced no diagnostics on stderr")
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-dir", "../..", "./internal/lint/testdata/src/ctx"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run -json over ctx fixture = %d, want 1 (stderr: %s)", code, errOut.String())
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output has no findings")
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || !strings.HasPrefix(f.Rule, "hummer/") || f.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", f)
		}
	}
}
