// Command hummer-bench regenerates the reproduction experiments of
// DESIGN.md §3 and prints their tables (the contents of
// EXPERIMENTS.md).
//
// Usage:
//
//	hummer-bench            # run all experiments
//	hummer-bench -exp e5    # run one experiment
//	hummer-bench -seed 7    # change the workload seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hummer/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (e.g. e5); empty runs all: "+
		strings.Join(experiments.IDs(), ", "))
	seed := flag.Int64("seed", 2005, "workload seed")
	flag.Parse()

	if *exp != "" {
		rep := experiments.ByID(*exp, *seed)
		if rep == nil {
			fmt.Fprintf(os.Stderr, "hummer-bench: unknown experiment %q (known: %s)\n",
				*exp, strings.Join(experiments.IDs(), ", "))
			os.Exit(1)
		}
		fmt.Println(rep)
		return
	}
	for _, rep := range experiments.All(*seed) {
		fmt.Println(rep)
	}
}
