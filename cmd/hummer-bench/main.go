// Command hummer-bench regenerates the reproduction experiments of
// DESIGN.md §3 and prints their tables (the contents of
// EXPERIMENTS.md).
//
// Usage:
//
//	hummer-bench                 # run all experiments
//	hummer-bench -exp e5         # run one experiment
//	hummer-bench -seed 7         # change the workload seed
//	hummer-bench -json           # also write BENCH_<date>.json
//	hummer-bench -json -out x.json
//	hummer-bench -exp e12 -sizes 1000,5000,20000   # full scale-up
//
// The -json artifact records, per experiment, its wall-clock cost and
// table, plus the machine-readable samples (timings,
// duplicate-detection comparison counters, loadgen class results)
// some experiments attach — the perf trajectory of the repo is
// tracked through these files. Writing into an existing same-day
// artifact MERGES: entries with the same experiment id are replaced,
// others are kept, so `hummer-bench -json -exp e14` after a full run
// refreshes one table instead of erasing twelve.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hummer/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (e.g. e5); empty runs all: "+
		strings.Join(experiments.IDs(), ", "))
	seed := flag.Int64("seed", 2005, "workload seed")
	jsonOut := flag.Bool("json", false, "write a BENCH_<date>.json artifact")
	outPath := flag.String("out", "", "artifact path (default BENCH_<date>.json)")
	sizes := flag.String("sizes", "", "comma-separated input sizes for e12/e13 (e.g. 1000,5000,20000)")
	flag.Parse()

	// Flags that silently do nothing are a trap: reject meaningless
	// combinations instead of producing a misleading run.
	if id := strings.ToLower(*exp); *sizes != "" && id != "e12" && id != "e13" {
		fmt.Fprintln(os.Stderr, "hummer-bench: -sizes only applies to -exp e12 or e13")
		os.Exit(1)
	}
	if *outPath != "" && !*jsonOut {
		fmt.Fprintln(os.Stderr, "hummer-bench: -out requires -json")
		os.Exit(1)
	}

	var reports []*experiments.Report
	var entries []experiments.ArtifactEntry
	t0 := time.Now()
	run := func(gen func() *experiments.Report) {
		s0 := time.Now()
		rep := gen()
		secs := time.Since(s0).Seconds()
		if rep == nil {
			return
		}
		reports = append(reports, rep)
		entries = append(entries, experiments.EntryFor(rep, secs))
	}

	switch {
	case *exp != "":
		id := strings.ToLower(*exp)
		if (id == "e12" || id == "e13") && *sizes != "" {
			ns, err := parseSizes(*sizes)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hummer-bench:", err)
				os.Exit(1)
			}
			if id == "e12" {
				run(func() *experiments.Report { return experiments.E12(*seed, ns) })
			} else {
				run(func() *experiments.Report { return experiments.E13(*seed, ns) })
			}
		} else {
			run(func() *experiments.Report { return experiments.ByID(id, *seed) })
		}
		if len(reports) == 0 {
			fmt.Fprintf(os.Stderr, "hummer-bench: unknown experiment %q (known: %s)\n",
				*exp, strings.Join(experiments.IDs(), ", "))
			os.Exit(1)
		}
	default:
		for _, id := range experiments.IDs() {
			id := id
			run(func() *experiments.Report { return experiments.ByID(id, *seed) })
		}
	}

	for _, rep := range reports {
		fmt.Println(rep)
	}

	if *jsonOut {
		art := &experiments.Artifact{
			Date:         time.Now().Format("2006-01-02"),
			Seed:         *seed,
			GoMaxProcs:   runtime.GOMAXPROCS(0),
			GoVersion:    runtime.Version(),
			TotalSeconds: time.Since(t0).Seconds(),
			Experiments:  entries,
		}
		path := *outPath
		if path == "" {
			path = "BENCH_" + art.Date + ".json"
		}
		n, err := experiments.WriteMerged(path, art)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hummer-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hummer-bench: wrote %s (%d experiments)\n", path, n)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -sizes entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
