// Command hummerd is the HumMer query service: a long-lived HTTP/JSON
// server over one shared DB. Sources are registered at startup from
// flags or at runtime through the API; FUSE BY queries are served
// concurrently, with the expensive pipeline artifacts (DUMAS matches,
// duplicate detections, parsed plans) shared across queries through
// the versioned artifact cache.
//
// Usage:
//
//	hummerd -addr :8080 -csv students1=ee.csv -csv students2=cs.csv
//
// Flags:
//
//	-addr HOST:PORT      listen address (default :8080)
//	-csv alias=path      register a CSV source (repeatable)
//	-json alias=path     register a JSON source (repeatable)
//	-xml alias=path:tag  register an XML source (repeatable)
//	-cache N             artifact-cache capacity in entries (0 = default)
//	-parallelism N       unified parallelism: concurrent batch
//	                     statements, hash-join probe workers, and the
//	                     default for -parallel / -match-parallel
//	                     (0 = GOMAXPROCS; 1 = fully sequential;
//	                     results are byte-identical at every setting)
//	-parallel N          duplicate-detection workers (0 = inherit
//	                     -parallelism)
//	-match-parallel N    schema-matching workers (0 = inherit
//	                     -parallelism)
//	-query-timeout D     per-query execution bound (default 60s; 0 = none);
//	                     an elapsed timeout cancels the pipeline
//	                     mid-flight and returns 504
//	-max-inflight N      concurrently executing queries admitted
//	                     (0 = unbounded); over-limit requests get an
//	                     immediate 429 instead of queueing
//	-admission-queue N   with -max-inflight, let up to N over-limit
//	                     requests wait for a slot instead of 429ing
//	-admission-wait D    how long a queued request may wait before
//	                     503 (default 1s; needs -admission-queue)
//	-allow-path-sources  let API clients register server-local files by
//	                     path (off by default: file-disclosure risk)
//	-log-level LEVEL     minimum log level: debug, info, warn, error
//	                     (default info)
//	-log-format FORMAT   log output format: text or json (default text)
//	-slow-query D        log the full span tree of any query slower
//	                     than D (0 = disabled)
//	-trace-ring N        per-query traces kept for GET /v1/trace
//	                     (default 128; 0 disables tracing)
//	-debug-addr ADDR     serve net/http/pprof on a second listener
//	                     (off by default; never expose publicly)
//
// Rejection responses (429, 503, 504) carry a Retry-After header.
//
// Setting HUMMER_FAULTS arms the deterministic fault-injection
// harness (see internal/faultinject) — test/chaos builds only; the
// server logs a loud warning when it is armed.
//
// Every query runs under its request's context: a client that hangs
// up cancels its own pipeline mid-flight (logged as 499), so slow
// matches and detections never hold worker pools for clients that are
// gone. Large results stream as NDJSON via POST /v1/query/stream;
// POST /v1/batch executes several statements per request, each under
// its own deadline. Prometheus metrics are served on /metrics.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests get up to 10 seconds to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hummer"
	"hummer/internal/faultinject"
	"hummer/internal/flagspec"
	"hummer/internal/obs"
	"hummer/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hummerd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hummerd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	var csvs, jsons, xmls flagspec.Multi
	fs.Var(&csvs, "csv", "alias=path of a CSV source (repeatable)")
	fs.Var(&jsons, "json", "alias=path of a JSON source (repeatable)")
	fs.Var(&xmls, "xml", "alias=path:recordTag of an XML source (repeatable)")
	cacheCap := fs.Int("cache", 0, "artifact-cache capacity in entries (0 = default)")
	parallelism := fs.Int("parallelism", 0,
		"unified parallelism: concurrent batch statements, hash-join probe workers and the default for -parallel/-match-parallel (0 = GOMAXPROCS)")
	parallel := fs.Int("parallel", 0, "duplicate-detection workers (0 = inherit -parallelism)")
	matchParallel := fs.Int("match-parallel", 0, "schema-matching workers (0 = inherit -parallelism)")
	queryTimeout := fs.Duration("query-timeout", 60*time.Second,
		"per-query execution bound; an elapsed timeout cancels the pipeline mid-flight (504). 0 disables")
	maxInflight := fs.Int("max-inflight", 0,
		"concurrently executing queries admitted; over-limit requests get an immediate 429 (0 = unbounded)")
	admissionQueue := fs.Int("admission-queue", 0,
		"with -max-inflight: over-limit requests that may wait for a slot instead of 429ing (0 = reject immediately)")
	admissionWait := fs.Duration("admission-wait", time.Second,
		"how long a queued request may wait for a slot before 503 (needs -admission-queue)")
	allowPaths := fs.Bool("allow-path-sources", false,
		"let API clients register server-local files by path (file-disclosure risk; keep off unless clients are trusted)")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	slowQuery := fs.Duration("slow-query", 0,
		"log the full span tree of any query slower than this (0 = disabled)")
	traceRing := fs.Int("trace-ring", server.DefaultTraceRing,
		"per-query traces kept for GET /v1/trace (0 disables tracing)")
	debugAddr := fs.String("debug-addr", "",
		"serve net/http/pprof on this second listener (empty = off; never expose publicly)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	if armed, err := faultinject.ArmFromEnv(os.Getenv(faultinject.EnvVar)); err != nil {
		return fmt.Errorf("%s: %w", faultinject.EnvVar, err)
	} else if armed {
		logger.Warn("fault injection ARMED — queries will fail on purpose; never set this in production",
			"env", faultinject.EnvVar, "spec", os.Getenv(faultinject.EnvVar))
	}

	db := hummer.New(hummer.WithCacheCapacity(*cacheCap))
	db.SetParallelism(*parallelism)
	db.SetDetectConfig(hummer.DetectionConfig{Parallelism: *parallel})
	db.SetMatchConfig(hummer.MatchConfig{Parallelism: *matchParallel})
	for _, spec := range csvs {
		alias, path, err := flagspec.Split(spec, "=")
		if err != nil {
			return fmt.Errorf("-csv %q: %w", spec, err)
		}
		if err := db.RegisterCSV(alias, path); err != nil {
			return err
		}
	}
	for _, spec := range jsons {
		alias, path, err := flagspec.Split(spec, "=")
		if err != nil {
			return fmt.Errorf("-json %q: %w", spec, err)
		}
		if err := db.RegisterJSON(alias, path); err != nil {
			return err
		}
	}
	for _, spec := range xmls {
		alias, rest, err := flagspec.Split(spec, "=")
		if err != nil {
			return fmt.Errorf("-xml %q: %w", spec, err)
		}
		path, tag, err := flagspec.SplitPathTag(rest)
		if err != nil {
			return fmt.Errorf("-xml %q: want alias=path:recordTag", spec)
		}
		if err := db.RegisterXML(alias, path, tag); err != nil {
			return err
		}
	}

	srvOpts := []server.Option{
		server.WithQueryTimeout(*queryTimeout),
		server.WithMaxInflight(*maxInflight),
		server.WithLogger(logger),
		server.WithTraceRing(*traceRing),
	}
	if *admissionQueue > 0 {
		srvOpts = append(srvOpts, server.WithAdmissionWait(*admissionQueue, *admissionWait))
	}
	if *allowPaths {
		srvOpts = append(srvOpts, server.AllowPathSources())
	}
	if *slowQuery > 0 {
		srvOpts = append(srvOpts, server.WithSlowQueryLog(*slowQuery))
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(db, srvOpts...).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		// pprof on its own listener and mux: the profiling surface
		// stays off the query port, so binding it to localhost while
		// the API faces the network is a flag away.
		dbgMux := http.NewServeMux()
		dbgMux.HandleFunc("/debug/pprof/", pprof.Index)
		dbgMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbgMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbgMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbgMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbgSrv := &http.Server{Addr: *debugAddr, Handler: dbgMux, ReadHeaderTimeout: 10 * time.Second}
		defer dbgSrv.Close()
		go func() {
			logger.Info("pprof debug server listening", "addr", *debugAddr)
			if err := dbgSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof debug server failed", "error", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", *addr, "sources", len(db.Sources()))
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	st := db.Stats()
	logger.Info("served",
		"queries", st.Queries,
		"fusion_queries", st.FuseQueries,
		"query_errors", st.QueryErrors,
		"cache_hit_rate", st.Cache.HitRate())
	return <-errCh
}
