// Command hummerd is the HumMer query service: a long-lived HTTP/JSON
// server over one shared DB. Sources are registered at startup from
// flags or at runtime through the API; FUSE BY queries are served
// concurrently, with the expensive pipeline artifacts (DUMAS matches,
// duplicate detections, parsed plans) shared across queries through
// the versioned artifact cache.
//
// Usage:
//
//	hummerd -addr :8080 -csv students1=ee.csv -csv students2=cs.csv
//
// Flags:
//
//	-addr HOST:PORT      listen address (default :8080)
//	-csv alias=path      register a CSV source (repeatable)
//	-json alias=path     register a JSON source (repeatable)
//	-xml alias=path:tag  register an XML source (repeatable)
//	-cache N             artifact-cache capacity in entries (0 = default)
//	-parallel N          duplicate-detection workers (0 = GOMAXPROCS)
//	-match-parallel N    schema-matching workers (0 = GOMAXPROCS)
//	-query-timeout D     per-query execution bound (default 60s; 0 = none);
//	                     an elapsed timeout cancels the pipeline
//	                     mid-flight and returns 504
//	-max-inflight N      concurrently executing queries admitted
//	                     (0 = unbounded); over-limit requests get an
//	                     immediate 429 instead of queueing
//	-admission-queue N   with -max-inflight, let up to N over-limit
//	                     requests wait for a slot instead of 429ing
//	-admission-wait D    how long a queued request may wait before
//	                     503 (default 1s; needs -admission-queue)
//	-allow-path-sources  let API clients register server-local files by
//	                     path (off by default: file-disclosure risk)
//
// Rejection responses (429, 503, 504) carry a Retry-After header.
//
// Setting HUMMER_FAULTS arms the deterministic fault-injection
// harness (see internal/faultinject) — test/chaos builds only; the
// server logs a loud warning when it is armed.
//
// Every query runs under its request's context: a client that hangs
// up cancels its own pipeline mid-flight (logged as 499), so slow
// matches and detections never hold worker pools for clients that are
// gone. Large results stream as NDJSON via POST /v1/query/stream;
// POST /v1/batch executes several statements per request, each under
// its own deadline. Prometheus metrics are served on /metrics.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests get up to 10 seconds to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hummer"
	"hummer/internal/faultinject"
	"hummer/internal/flagspec"
	"hummer/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hummerd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hummerd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	var csvs, jsons, xmls flagspec.Multi
	fs.Var(&csvs, "csv", "alias=path of a CSV source (repeatable)")
	fs.Var(&jsons, "json", "alias=path of a JSON source (repeatable)")
	fs.Var(&xmls, "xml", "alias=path:recordTag of an XML source (repeatable)")
	cacheCap := fs.Int("cache", 0, "artifact-cache capacity in entries (0 = default)")
	parallel := fs.Int("parallel", 0, "duplicate-detection workers (0 = GOMAXPROCS)")
	matchParallel := fs.Int("match-parallel", 0, "schema-matching workers (0 = GOMAXPROCS)")
	queryTimeout := fs.Duration("query-timeout", 60*time.Second,
		"per-query execution bound; an elapsed timeout cancels the pipeline mid-flight (504). 0 disables")
	maxInflight := fs.Int("max-inflight", 0,
		"concurrently executing queries admitted; over-limit requests get an immediate 429 (0 = unbounded)")
	admissionQueue := fs.Int("admission-queue", 0,
		"with -max-inflight: over-limit requests that may wait for a slot instead of 429ing (0 = reject immediately)")
	admissionWait := fs.Duration("admission-wait", time.Second,
		"how long a queued request may wait for a slot before 503 (needs -admission-queue)")
	allowPaths := fs.Bool("allow-path-sources", false,
		"let API clients register server-local files by path (file-disclosure risk; keep off unless clients are trusted)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if armed, err := faultinject.ArmFromEnv(os.Getenv(faultinject.EnvVar)); err != nil {
		return fmt.Errorf("%s: %w", faultinject.EnvVar, err)
	} else if armed {
		log.Printf("hummerd: WARNING: fault injection ARMED via %s=%q — queries will fail on purpose; never set this in production",
			faultinject.EnvVar, os.Getenv(faultinject.EnvVar))
	}

	db := hummer.New(hummer.WithCacheCapacity(*cacheCap))
	db.SetDetectConfig(hummer.DetectionConfig{Parallelism: *parallel})
	db.SetMatchConfig(hummer.MatchConfig{Parallelism: *matchParallel})
	for _, spec := range csvs {
		alias, path, err := flagspec.Split(spec, "=")
		if err != nil {
			return fmt.Errorf("-csv %q: %w", spec, err)
		}
		if err := db.RegisterCSV(alias, path); err != nil {
			return err
		}
	}
	for _, spec := range jsons {
		alias, path, err := flagspec.Split(spec, "=")
		if err != nil {
			return fmt.Errorf("-json %q: %w", spec, err)
		}
		if err := db.RegisterJSON(alias, path); err != nil {
			return err
		}
	}
	for _, spec := range xmls {
		alias, rest, err := flagspec.Split(spec, "=")
		if err != nil {
			return fmt.Errorf("-xml %q: %w", spec, err)
		}
		path, tag, err := flagspec.SplitPathTag(rest)
		if err != nil {
			return fmt.Errorf("-xml %q: want alias=path:recordTag", spec)
		}
		if err := db.RegisterXML(alias, path, tag); err != nil {
			return err
		}
	}

	srvOpts := []server.Option{
		server.WithQueryTimeout(*queryTimeout),
		server.WithMaxInflight(*maxInflight),
	}
	if *admissionQueue > 0 {
		srvOpts = append(srvOpts, server.WithAdmissionWait(*admissionQueue, *admissionWait))
	}
	if *allowPaths {
		srvOpts = append(srvOpts, server.AllowPathSources())
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(db, srvOpts...).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("hummerd: serving on %s (%d sources registered)", *addr, len(db.Sources()))
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("hummerd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	st := db.Stats()
	log.Printf("hummerd: served %d queries (%d fusion, %d errors), cache hit rate %.0f%%",
		st.Queries, st.FuseQueries, st.QueryErrors, st.Cache.HitRate()*100)
	return <-errCh
}
