package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFuseQueryOverCSV(t *testing.T) {
	dir := t.TempDir()
	ee := write(t, dir, "ee.csv", "Name,Age,City\nJonathan Smith,21,Berlin\nMaria Garcia,24,Hamburg\n")
	cs := write(t, dir, "cs.csv", "FullName,Years,Town\nJonathan Smith,22,Berlin\n")
	var out strings.Builder
	err := run([]string{
		"-csv", "ee=" + ee,
		"-csv", "cs=" + cs,
		"-query", "SELECT Name, RESOLVE(Age, max) FUSE FROM ee, cs FUSE BY (Name) ORDER BY Name",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Jonathan Smith") || !strings.Contains(got, "22") {
		t.Errorf("output missing fused row:\n%s", got)
	}
	if !strings.Contains(got, "[2 rows]") {
		t.Errorf("expected 2 fused rows:\n%s", got)
	}
}

// TestRunMatchFlags: the schema-matching knobs must reach the fusion
// pipeline — same fused result, whatever strategy and worker count.
func TestRunMatchFlags(t *testing.T) {
	dir := t.TempDir()
	ee := write(t, dir, "ee.csv", "Name,Age,City\nJonathan Smith,21,Berlin\nMaria Garcia,24,Hamburg\n")
	cs := write(t, dir, "cs.csv", "FullName,Years,Town\nJonathan Smith,22,Berlin\n")
	query := "SELECT Name, RESOLVE(Age, max) FUSE FROM ee, cs FUSE BY (Name) ORDER BY Name"
	var want string
	for i, extra := range [][]string{
		nil,
		{"-match-parallel", "2"},
		{"-match-window", "5"},
		{"-match-qgrams", "3", "-match-dups", "2"},
	} {
		args := append([]string{"-csv", "ee=" + ee, "-csv", "cs=" + cs, "-query", query}, extra...)
		var out strings.Builder
		if err := run(args, strings.NewReader(""), &out); err != nil {
			t.Fatalf("%v: %v", extra, err)
		}
		if i == 0 {
			want = out.String()
			if !strings.Contains(want, "Jonathan Smith") {
				t.Fatalf("baseline output missing fused row:\n%s", want)
			}
			continue
		}
		if out.String() != want {
			t.Errorf("%v changed the fused result:\nwant:\n%s\ngot:\n%s", extra, want, out.String())
		}
	}
	// Conflicting strategies must surface the config error.
	err := run([]string{
		"-csv", "ee=" + ee, "-csv", "cs=" + cs,
		"-match-window", "3", "-match-qgrams", "3", "-query", query,
	}, strings.NewReader(""), &strings.Builder{})
	if err == nil {
		t.Error("-match-window with -match-qgrams accepted; want error")
	}
}

func TestRunQueryFromStdin(t *testing.T) {
	dir := t.TempDir()
	f := write(t, dir, "t.csv", "a\n1\n2\n")
	var out strings.Builder
	err := run([]string{"-csv", "t=" + f},
		strings.NewReader("SELECT a FROM t ORDER BY a DESC"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "[2 rows]") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunLineageAndTrace(t *testing.T) {
	dir := t.TempDir()
	a := write(t, dir, "a.csv", "Name,Price\nAbbey Road,18.99\n")
	b := write(t, dir, "b.json", `[{"Name": "Abbey Road", "Price": 12.49}]`)
	c := write(t, dir, "c.xml", "<cat><cd><Name>Abbey Road</Name><Price>15.75</Price></cd></cat>")
	var out strings.Builder
	err := run([]string{
		"-csv", "a=" + a,
		"-json", "b=" + b,
		"-xml", "c=" + c + ":cd",
		"-lineage", "-trace",
		"-query", "SELECT Name, RESOLVE(Price, min) FUSE FROM a, b, c FUSE BY (Name)",
	}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"— sources —", "— merged", "duplicate detection", "— lineage —", "12.49"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in output:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-query", "SELECT"},           // syntax error
		{"-csv", "noequals"},           // bad spec
		{"-json", "x"},                 // bad spec
		{"-xml", "a=file-without-tag"}, // missing :tag
		{"-csv", "a=/no/such/file.csv", "-query", "SELECT x FROM a"}, // load error
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, strings.NewReader(""), &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunNoQuery(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("   "), &out); err == nil {
		t.Error("empty query must error")
	}
}
