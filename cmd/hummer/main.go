// Command hummer is the HumMer command-line interface: register data
// sources (CSV/JSON/XML files) under aliases and run a Fuse By or
// SELECT query against them.
//
// Usage:
//
//	hummer -csv students1=ee.csv -csv students2=cs.csv \
//	       -query "SELECT Name, RESOLVE(Age, max) FUSE FROM students1, students2 FUSE BY (Name)"
//
// Flags:
//
//	-csv alias=path      register a CSV source (repeatable)
//	-json alias=path     register a JSON source (repeatable)
//	-xml alias=path:tag  register an XML source (repeatable)
//	-query SQL           the query; reads stdin when omitted
//	-lineage             annotate each cell with its sources
//	-no-lineage          don't compute a lineage payload at all
//	                     (queries with WithLineage(false))
//	-trace               print the pipeline intermediates (queries
//	                     with WithTrace: intermediates are opt-in)
//	-no-trace            drop the intermediates even from a cold run
//	                     (the slimmest result; conflicts with -trace)
//	-timeout D           per-query deadline (e.g. 30s; 0 = none)
//	-parallel N          duplicate-detection worker goroutines
//	                     (0 = GOMAXPROCS, 1 = sequential; identical results)
//	-window W            sorted-neighborhood candidate generation
//	-block P             prefix-blocking candidate generation (P = prefix runes)
//	-qgrams Q            q-gram blocking candidate generation (Q = gram length)
//	-threshold T         duplicate similarity threshold (default 0.8)
//	-match-parallel N    schema-matching worker goroutines
//	                     (0 = GOMAXPROCS, 1 = sequential; identical results)
//	-match-window W      sorted-neighborhood duplicate discovery for matching
//	-match-qgrams Q      q-gram prefix blocking for matching (Q = gram length)
//	-match-dups K        duplicates used for field-wise comparison (default 10)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hummer"
	"hummer/internal/flagspec"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hummer:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("hummer", flag.ContinueOnError)
	var csvs, jsons, xmls flagspec.Multi
	fs.Var(&csvs, "csv", "alias=path of a CSV source (repeatable)")
	fs.Var(&jsons, "json", "alias=path of a JSON source (repeatable)")
	fs.Var(&xmls, "xml", "alias=path:recordTag of an XML source (repeatable)")
	query := fs.String("query", "", "the query; stdin when omitted")
	lineageFlag := fs.Bool("lineage", false, "annotate cells with their sources")
	noLineage := fs.Bool("no-lineage", false, "drop the per-cell lineage from the result")
	trace := fs.Bool("trace", false, "print pipeline intermediates (opt-in per query)")
	noTrace := fs.Bool("no-trace", false, "drop pipeline intermediates even from a cold run")
	timeout := fs.Duration("timeout", 0, "per-query deadline (0 = none)")
	parallel := fs.Int("parallel", 0, "duplicate-detection workers (0 = GOMAXPROCS, 1 = sequential)")
	window := fs.Int("window", 0, "sorted-neighborhood window (0 = exhaustive pairing)")
	block := fs.Int("block", 0, "prefix-blocking key length in runes (0 = off)")
	qgrams := fs.Int("qgrams", 0, "q-gram blocking gram length (0 = off)")
	threshold := fs.Float64("threshold", 0, "duplicate similarity threshold (0 = default 0.8)")
	matchParallel := fs.Int("match-parallel", 0, "schema-matching workers (0 = GOMAXPROCS, 1 = sequential)")
	matchWindow := fs.Int("match-window", 0, "schema-matching sorted-neighborhood window (0 = token index)")
	matchQGrams := fs.Int("match-qgrams", 0, "schema-matching q-gram blocking gram length (0 = off)")
	matchDups := fs.Int("match-dups", 0, "duplicates used for field-wise comparison (0 = default 10)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	db := hummer.New()
	db.SetDetectConfig(hummer.DetectionConfig{
		Threshold:   *threshold,
		Window:      *window,
		Blocking:    *block,
		QGrams:      *qgrams,
		Parallelism: *parallel,
	})
	db.SetMatchConfig(hummer.MatchConfig{
		MaxDuplicates: *matchDups,
		Window:        *matchWindow,
		QGrams:        *matchQGrams,
		Parallelism:   *matchParallel,
	})
	for _, spec := range csvs {
		alias, path, err := flagspec.Split(spec, "=")
		if err != nil {
			return fmt.Errorf("-csv %q: %w", spec, err)
		}
		if err := db.RegisterCSV(alias, path); err != nil {
			return err
		}
	}
	for _, spec := range jsons {
		alias, path, err := flagspec.Split(spec, "=")
		if err != nil {
			return fmt.Errorf("-json %q: %w", spec, err)
		}
		if err := db.RegisterJSON(alias, path); err != nil {
			return err
		}
	}
	for _, spec := range xmls {
		alias, rest, err := flagspec.Split(spec, "=")
		if err != nil {
			return fmt.Errorf("-xml %q: %w", spec, err)
		}
		path, tag, err := flagspec.SplitPathTag(rest)
		if err != nil {
			return fmt.Errorf("-xml %q: want alias=path:recordTag", spec)
		}
		if err := db.RegisterXML(alias, path, tag); err != nil {
			return err
		}
	}

	q := *query
	if q == "" {
		data, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		q = strings.TrimSpace(string(data))
	}
	if q == "" {
		return fmt.Errorf("no query given (use -query or pipe via stdin)")
	}

	// The per-query options: -trace opts in to the pipeline
	// intermediates (they are no longer an always-on payload),
	// -no-trace/-no-lineage strip the result down to the table, and
	// -timeout bounds the query with its own deadline.
	if *trace && *noTrace {
		return fmt.Errorf("-trace and -no-trace conflict")
	}
	if *lineageFlag && *noLineage {
		return fmt.Errorf("-lineage and -no-lineage conflict")
	}
	var opts []hummer.QueryOption
	if *trace {
		opts = append(opts, hummer.WithTrace())
	}
	if *noTrace {
		opts = append(opts, hummer.WithoutTrace())
	}
	if *noLineage {
		opts = append(opts, hummer.WithLineage(false))
	}
	if *timeout > 0 {
		opts = append(opts, hummer.WithTimeout(*timeout))
	}

	res, err := db.Query(q, opts...)
	if err != nil {
		return err
	}
	if *trace && res.Pipeline != nil {
		p := res.Pipeline
		fmt.Fprintf(stdout, "— sources —\n")
		for _, s := range p.Sources {
			fmt.Fprintln(stdout, s)
		}
		fmt.Fprintf(stdout, "— merged (after matching + outer union) —\n%s", p.Merged)
		if p.Detection != nil {
			fmt.Fprintf(stdout, "— duplicate detection: %d clusters, %d sure pairs, %d borderline, %d/%d comparisons —\n",
				len(p.Detection.Clusters), len(p.Detection.Duplicates),
				len(p.Detection.Borderline), p.Detection.Stats.Compared,
				p.Detection.Stats.CandidatePairs)
		}
		fmt.Fprintf(stdout, "— fused result —\n")
	}
	fmt.Fprint(stdout, res.Rel)
	if *lineageFlag && res.Lineage != nil {
		fmt.Fprintln(stdout, "— lineage —")
		for i := range res.Lineage {
			parts := make([]string, len(res.Lineage[i]))
			for j, l := range res.Lineage[i] {
				parts[j] = l.String()
				if parts[j] == "" {
					parts[j] = "-"
				}
			}
			fmt.Fprintf(stdout, "row %d: %s\n", i, strings.Join(parts, " | "))
		}
	}
	return nil
}
